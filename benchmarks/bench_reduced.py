"""Reduction-based maintenance benchmark: bounded-#htw update streams.

The two acceptance bars of ISSUE 5, asserted here and recorded into
``BENCH_kernel.json`` by ``run_all.py``:

* **maintained reduced stream >= 3x** — interleaved update/count
  streams over a *quantified* star (existential tail variables) and a
  *cyclic* triangle — shapes the direct join-tree DP refuses and only
  the Theorem 3.7 reduction (:class:`~repro.dynamic.ReducedMaintainer`)
  can maintain — served by a :class:`~repro.service.CountingSession`'s
  maintained path must beat recompute-per-count (``apply_update`` + a
  fresh ``count_answers`` per step) by at least 3x on the same jobs.
  The stream shape is the session's read-dominated traffic: one
  single-tuple update followed by ``COUNTS_PER_ROUND`` reads (the
  first, dirty read pays the consistency repair; every later read is
  served straight from the DP).  Since the compiled execution tier
  landed, recompute-per-count is fast enough to win *write-heavy*
  streams — the maintained path's bar is measured on the read-heavy
  side of that crossover, which is the regime it exists for;
* **spill-forced reduced session stays correct under its cap** — a
  session whose maintainer budget is deliberately too small for both
  reduced DPs must (a) produce exactly the counts of an unbudgeted
  session on the same stream, (b) actually spill and restore reduced
  maintainers, and (c) keep peak resident maintainer bytes under the
  configured budget.

ISSUE 10 added a third bar:

* **single-update dirty reads repair in O(delta)** — on a large
  resident triangle instance, a stream of single-tuple-update-then-read
  rounds against the frontier-propagating delta repair must beat the
  same stream against a maintainer forced through a full re-reduction
  before every read (``rebuild_consistency()``, the pre-ISSUE-10
  per-read cost) by at least 3x.

Standalone usage (CI artifact)::

    PYTHONPATH=src python benchmarks/bench_reduced.py -o bench-reduced.json
"""

from __future__ import annotations

import time

from repro.counting.engine import count_answers
from repro.counting.plan_cache import PLAN_CACHE_DIR_ENV
from repro.db.database import Database
from repro.dynamic import Insert, ReducedMaintainer, apply_update
from repro.dynamic.maintainer import MAINTAINER_BUDGET_ENV
from repro.envknobs import isolated_repro_env
from repro.query.parser import parse_query
from repro.service import (
    SESSION_SHARDS_ENV,
    SHARD_MODE_ENV,
    CountRequest,
    CountingSession,
    UpdateRequest,
)
from repro.service.net import SHARD_ADDRS_ENV

#: Quantified star: the C tails are existential, so the direct DP
#: refuses the shape and every maintained count rides the reduction.
STAR_BRANCHES = 3
QUANT_QUERY = parse_query(
    "ans(A, " + ", ".join(f"B{i}" for i in range(STAR_BRANCHES)) + ") :- "
    + "hub(A), "
    + ", ".join(f"r{i}(A, B{i})" for i in range(STAR_BRANCHES)) + ", "
    + ", ".join(f"t{i}(B{i}, C{i})" for i in range(STAR_BRANCHES))
)
#: Cyclic triangle: quantifier-free but alpha-cyclic (width-2 reduction).
TRI_QUERY = parse_query("ans(A, B, C) :- r(A, B), s(B, C), t(C, A)")

ROUNDS = 30
#: Reads per update round (read-heavy session traffic: the first read
#: after an update repairs, later reads are served from the DP).  At
#: two reads per update the compiled engine's recompute now wins; the
#: maintained path's regime — and this bar — is read-dominated.
COUNTS_PER_ROUND = 8
STAR_HUB = 30
STAR_ROWS = 800
TRI_NODES = 60
TRI_EDGES = 500


def _isolated_from_configured_env():
    """Run measurements without CI's suite-wide session/cache knobs.

    The CI legs set tiny ``REPRO_MAINTAINER_BUDGET_MB`` values and a
    shared ``REPRO_PLAN_CACHE_DIR`` suite-wide; this benchmark pins its
    own budgets and must not share (or wipe) a suite-wide spill
    directory.  ``isolated_repro_env`` holds the variables back and
    parks the process-global default cache (which may already be the CI
    leg's shared ``PersistentPlanCache``) so the measurement neither
    reads nor writes the suite-wide spill directory.
    """
    return isolated_repro_env(**{
        MAINTAINER_BUDGET_ENV: None,
        SESSION_SHARDS_ENV: None,
        PLAN_CACHE_DIR_ENV: None,
        SHARD_MODE_ENV: None,
        SHARD_ADDRS_ENV: None,
    })


def quantified_database(shift: int = 0, rows: int = STAR_ROWS) -> Database:
    relations = {"hub": [(a,) for a in range(STAR_HUB)]}
    for branch in range(STAR_BRANCHES):
        relations[f"r{branch}"] = [
            (i % STAR_HUB, (i * (7 + branch) + shift) % rows)
            for i in range(rows)
        ]
        relations[f"t{branch}"] = [
            ((i * (3 + branch) + shift) % rows, i % 97)
            for i in range(rows)
        ]
    return Database.from_dict(relations)


def quantified_updates():
    """Fresh inserts into the quantified tails, one branch per round."""
    return [
        Insert(f"t{index % STAR_BRANCHES}",
               (index % STAR_ROWS, 100 + index))
        for index in range(ROUNDS)
    ]


def triangle_database() -> Database:
    def edges(shift):
        return list({
            ((i * 13 + shift) % TRI_NODES, (i * 29 + shift * 7) % TRI_NODES)
            for i in range(TRI_EDGES)
        })
    return Database.from_dict({
        "r": edges(0), "s": edges(1), "t": edges(2),
    })


def triangle_updates():
    """Fresh inserts cycling over the triangle's three relations."""
    database = triangle_database()
    updates, used = [], {
        name: set(database[name].rows) for name in ("r", "s", "t")
    }
    index = 0
    while len(updates) < ROUNDS:
        name = ("r", "s", "t")[index % 3]
        row = ((index * 17 + 5) % TRI_NODES, (index * 31 + 11) % TRI_NODES)
        index += 1
        if row in used[name]:
            continue
        used[name].add(row)
        updates.append(Insert(name, row))
    return updates


WORKLOADS = (
    ("quantified", QUANT_QUERY, quantified_database, quantified_updates),
    ("cyclic", TRI_QUERY, triangle_database, triangle_updates),
)


# ----------------------------------------------------------------------
# Part 1: maintained reduced streams vs recompute-per-count
# ----------------------------------------------------------------------
def measure_stream(query, database_factory, updates) -> tuple:
    """``(recompute_seconds, session_seconds, counts_agree, stats)``."""
    # Recompute-per-count: apply each update, then count from scratch
    # once per requested read.
    database = database_factory()
    recompute_counts = []
    started = time.perf_counter()
    for update in updates:
        database = apply_update(database, update)
        for _read in range(COUNTS_PER_ROUND):
            recompute_counts.append(count_answers(query, database).count)
    recompute_seconds = time.perf_counter() - started

    # The session: same stream, maintained through the reduction.
    stream = []
    for update in updates:
        stream.append(UpdateRequest("main", update))
        for _read in range(COUNTS_PER_ROUND):
            stream.append(CountRequest(query, "main"))
    started = time.perf_counter()
    with CountingSession(databases={"main": database_factory()}) as session:
        results = session.run_stream(stream)
        stats = session.stats()
    session_seconds = time.perf_counter() - started
    session_counts = [r.count for r in results if hasattr(r, "count")]
    return (recompute_seconds, session_seconds,
            session_counts == recompute_counts, stats)


def measure_reduced_streams() -> dict:
    snapshot = {}
    recompute_total = session_total = 0.0
    with _isolated_from_configured_env():
        for name, query, database_factory, updates_factory in WORKLOADS:
            recompute, session, agree, stats = measure_stream(
                query, database_factory, updates_factory()
            )
            reads = ROUNDS * COUNTS_PER_ROUND
            assert agree, f"{name}: maintained counts diverged"
            assert stats["reduced_counts"] == reads, (
                f"{name}: expected every count on the reduced path, got "
                f"{stats['reduced_counts']}/{reads}"
            )
            recompute_total += recompute
            session_total += session
            snapshot[f"{name}_recompute_seconds"] = round(recompute, 4)
            snapshot[f"{name}_session_seconds"] = round(session, 4)
            snapshot[f"{name}_speedup"] = round(
                recompute / max(session, 1e-9), 2
            )
    speedup = round(recompute_total / max(session_total, 1e-9), 2)
    snapshot.update({
        "reduced_workload": f"{ROUNDS} rounds of 1 update / "
                            f"{COUNTS_PER_ROUND} counts each over a "
                            f"{STAR_BRANCHES}-branch quantified star and "
                            f"a {TRI_EDGES}-edge triangle",
        "reduced_recompute_seconds": round(recompute_total, 4),
        "reduced_session_seconds": round(session_total, 4),
        "reduced_speedup": speedup,
        "meets_reduced_3x_bar": speedup >= 3.0,
    })
    return snapshot


# ----------------------------------------------------------------------
# Part 2: spill-forced reduced session — correct, and under its cap
# ----------------------------------------------------------------------
#: Spill-leg sizing: two same-shape quantified databases whose DPs are
#: comparable, so "1.5x one DP" both forces eviction on every database
#: switch and leaves headroom for the provenance indexes a DP grows
#: while delta joins warm up.
SPILL_ROWS = 400
SPILL_ROUNDS = 12


def _spill_databases():
    return {"q0": quantified_database(shift=0, rows=SPILL_ROWS),
            "q1": quantified_database(shift=3, rows=SPILL_ROWS)}


def _spill_stream():
    """Alternating counts over two reduced databases, so a too-small
    budget evicts the cold DP on every switch."""
    stream = []
    quant_updates = quantified_updates()
    for index in range(SPILL_ROUNDS):
        for name in ("q0", "q1"):
            stream.append(UpdateRequest(name, quant_updates[index]))
            stream.append(CountRequest(QUANT_QUERY, name))
    return stream


def _probe_dp_bytes(name, query, database) -> int:
    """The resident size of one reduced DP, measured in isolation."""
    with CountingSession(databases={name: database},
                         maintainer_budget_bytes=None) as probe:
        probe.count(CountRequest(query, name))
        return probe.stats()["maintainers"]["resident_bytes"]


def measure_spill() -> dict:
    with _isolated_from_configured_env():
        stream = _spill_stream()
        with CountingSession(databases=_spill_databases(),
                             maintainer_budget_bytes=None) as unbudgeted:
            expected = [r.count for r in unbudgeted.run_stream(stream)
                        if hasattr(r, "count")]
        # The pool's cap contract is max(budget, largest single DP):
        # 1.5x one DP keeps the budget above either DP (with headroom
        # for index growth) while holding both is impossible, so every
        # database switch must spill the cold one.
        probe_databases = _spill_databases()
        budget = int(1.5 * max(
            _probe_dp_bytes(name, QUANT_QUERY, database)
            for name, database in probe_databases.items()
        ))

        with CountingSession(databases=_spill_databases(),
                             maintainer_budget_bytes=budget) as session:
            results = session.run_stream(stream)
            stats = session.stats()
            pool = stats["maintainers"]
    observed = [r.count for r in results if hasattr(r, "count")]
    correct = observed == expected
    under_cap = pool["peak_resident_bytes"] <= budget
    forced = pool["spilled"] > 0 and pool["restored"] > 0
    return {
        "reduced_spill_workload": f"{SPILL_ROUNDS} update/count rounds "
                                  f"alternating two quantified "
                                  f"databases, budget 1.5x one DP",
        "reduced_spill_budget_bytes": budget,
        "reduced_spill_peak_resident_bytes": pool["peak_resident_bytes"],
        "reduced_spill_spilled": pool["spilled"],
        "reduced_spill_restored": pool["restored"],
        "reduced_spill_reduced_counts": stats["reduced_counts"],
        "reduced_spill_correct": correct,
        "meets_reduced_spill_bar": (correct and under_cap and forced
                                    and stats["reduced_counts"] > 0),
    }


# ----------------------------------------------------------------------
# Part 3: O(delta) dirty-read repair vs full re-reduction per read
# ----------------------------------------------------------------------
#: Identity relations on this many nodes: every node closes the
#: triangle, so each bag keeps ~ODELTA_NODES resident survivors while a
#: single fresh-edge update's frontier is a handful of keys.
ODELTA_NODES = 1500
ODELTA_ROUNDS = 30


def _odelta_database() -> Database:
    loops = [(i, i) for i in range(ODELTA_NODES)]
    return Database.from_dict({"r": loops, "s": loops, "t": loops})


def _odelta_updates():
    """Single fresh-edge inserts; every third round closes a triangle."""
    updates = []
    for index in range(ODELTA_ROUNDS):
        node = ODELTA_NODES + index // 3
        name = ("r", "s", "t")[index % 3]
        updates.append(Insert(name, (node, node)))
    return updates


def measure_odelta() -> dict:
    with _isolated_from_configured_env():
        updates = _odelta_updates()
        delta = ReducedMaintainer(TRI_QUERY, _odelta_database())
        baseline = ReducedMaintainer(TRI_QUERY, _odelta_database())
        assert delta.count == baseline.count  # both warm before timing

        delta_counts = []
        started = time.perf_counter()
        for update in updates:
            delta.apply(update)
            delta_counts.append(delta.count)
        delta_seconds = time.perf_counter() - started

        baseline_counts = []
        started = time.perf_counter()
        for update in updates:
            baseline.apply(update)
            # The pre-frontier per-read cost: drop the delta reducer so
            # the next read pays a full re-reduction of every bag.
            baseline.rebuild_consistency()
            baseline_counts.append(baseline.count)
        baseline_seconds = time.perf_counter() - started

        stats = delta.repair_stats()
    assert delta_counts == baseline_counts, "O(delta) repair diverged"
    speedup = round(baseline_seconds / max(delta_seconds, 1e-9), 2)
    return {
        "reduced_odelta_workload": f"{ODELTA_ROUNDS} single-update/read "
                                   f"rounds on a {ODELTA_NODES}-node "
                                   f"resident triangle, delta repair vs "
                                   f"full re-reduction per read",
        "reduced_odelta_resident_nodes": ODELTA_NODES,
        "reduced_odelta_baseline_seconds": round(baseline_seconds, 4),
        "reduced_odelta_delta_seconds": round(delta_seconds, 4),
        "reduced_odelta_repair_rows": (stats["applied_rows"]
                                       + stats["rows_touched"]),
        "reduced_odelta_speedup": speedup,
        "meets_reduced_odelta_bar": speedup >= 3.0,
    }


def snapshot() -> dict:
    """The benchmark's JSON snapshot (merged into ``BENCH_kernel.json``)."""
    result = measure_reduced_streams()
    result.update(measure_spill())
    result.update(measure_odelta())
    return result


# ----------------------------------------------------------------------
# pytest entry points (run by benchmarks/run_all.py's snapshot section)
# ----------------------------------------------------------------------
def test_reduced_stream_at_least_3x_faster_than_recompute():
    """ISSUE 5 bar: maintained quantified/cyclic streams >= 3x over
    recompute-per-count."""
    outcome = measure_reduced_streams()
    assert outcome["meets_reduced_3x_bar"], (
        f"reduced session {outcome['reduced_session_seconds']}s not 3x "
        f"faster than recompute "
        f"{outcome['reduced_recompute_seconds']}s "
        f"({outcome['reduced_speedup']}x)"
    )


def test_spill_forced_reduced_session_correct_under_cap():
    """ISSUE 5 bar: a spill-forced reduced session stays count-correct
    with peak resident maintainer bytes under the configured budget."""
    outcome = measure_spill()
    assert outcome["reduced_spill_correct"], (
        "budgeted reduced session counts diverged"
    )
    assert (outcome["reduced_spill_spilled"] > 0
            and outcome["reduced_spill_restored"] > 0), (
        "the tiny budget did not force spill/restore"
    )
    assert (outcome["reduced_spill_peak_resident_bytes"]
            <= outcome["reduced_spill_budget_bytes"]), (
        f"peak {outcome['reduced_spill_peak_resident_bytes']}B exceeds "
        f"the {outcome['reduced_spill_budget_bytes']}B budget"
    )
    assert outcome["reduced_spill_reduced_counts"] > 0


def test_single_update_read_repair_is_odelta():
    """ISSUE 10 bar: frontier-propagating repair of a single-update
    dirty read >= 3x over full re-reduction on a large resident
    instance."""
    outcome = measure_odelta()
    assert outcome["meets_reduced_odelta_bar"], (
        f"delta repair {outcome['reduced_odelta_delta_seconds']}s not 3x "
        f"faster than per-read re-reduction "
        f"{outcome['reduced_odelta_baseline_seconds']}s "
        f"({outcome['reduced_odelta_speedup']}x)"
    )


if __name__ == "__main__":  # pragma: no cover - CI artifact entry point
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="bench-reduced.json")
    args = parser.parse_args()
    result = snapshot()
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))
    failed = []
    if not result["meets_reduced_3x_bar"]:
        failed.append("maintained reduced stream is not >= 3x faster "
                      "than recompute-per-count")
    if not result["meets_reduced_spill_bar"]:
        failed.append("spill-forced reduced session broke correctness "
                      "or its byte cap")
    if not result["meets_reduced_odelta_bar"]:
        failed.append("single-update dirty-read repair is not >= 3x "
                      "faster than full re-reduction per read")
    for message in failed:
        print(f"FAILED: {message}", file=sys.stderr)
    if failed:
        sys.exit(1)
