"""Tests for the Monte Carlo and Karp–Luby estimators."""

import pytest

from repro.approx import (
    karp_luby_union_count,
    monte_carlo_count,
)
from repro.approx.montecarlo import candidate_domains
from repro.counting.brute_force import count_brute_force
from repro.db import Database
from repro.exceptions import QueryError
from repro.query import parse_query
from repro.query.terms import Variable
from repro.ucq import count_union_brute_force, parse_ucq

PATH = parse_query("ans(A, C) :- r(A, B), s(B, C)")
PATH_DB = Database.from_dict({
    "r": [(1, 10), (1, 11), (2, 10), (3, 12)],
    "s": [(10, 5), (10, 6), (11, 5), (12, 7)],
})


class TestCandidateDomains:
    def test_only_free_variables_reported(self):
        domains = candidate_domains(PATH, PATH_DB)
        assert set(domains) == {Variable("A"), Variable("C")}

    def test_domains_cover_answers(self):
        domains = candidate_domains(PATH, PATH_DB)
        assert set(domains[Variable("A")]) >= {1, 2, 3}
        assert set(domains[Variable("C")]) >= {5, 6, 7}

    def test_intersection_across_atoms(self):
        query = parse_query("ans(A) :- r(A, B), s(A, C)")
        database = Database.from_dict({
            "r": [(1, 2), (2, 2)], "s": [(2, 9), (3, 9)],
        })
        domains = candidate_domains(query, database)
        assert set(domains[Variable("A")]) == {2}


class TestMonteCarlo:
    def test_estimate_close_on_small_instance(self):
        true = count_brute_force(PATH, PATH_DB)
        estimate = monte_carlo_count(PATH, PATH_DB, samples=3000, seed=0)
        assert estimate.covers(true)
        assert abs(estimate.estimate - true) < 2.0

    def test_empty_candidate_space_is_exact_zero(self):
        query = parse_query("ans(A) :- r(A, B), s(A)")
        database = Database.from_dict({"r": [(1, 2)], "s": [(9,)]})
        estimate = monte_carlo_count(query, database, samples=10, seed=0)
        assert estimate.estimate == 0.0
        assert estimate.space_size == 0
        assert estimate.samples == 0
        # The shortcut reports itself as exact: no sampled interval is
        # being claimed at the caller's confidence.
        assert estimate.exact
        assert estimate.half_width == 0.0

    def test_unsatisfiable_query_estimates_zero(self):
        # Candidate space nonempty (per-variable pruning cannot see the
        # join), yet no sample ever hits.
        query = parse_query("ans(A) :- r(A, B), s(B)")
        database = Database.from_dict({"r": [(1, 2)], "s": [(9,)]})
        estimate = monte_carlo_count(query, database, samples=10, seed=0)
        assert estimate.estimate == 0.0
        assert estimate.hits == 0
        # A sampled zero is NOT exact: the estimator cannot tell an
        # unsatisfiable query from a sparse one.
        assert not estimate.exact

    def test_boolean_query_shortcut(self):
        query = parse_query("ans() :- r(A, B)")
        database = Database.from_dict({"r": [(1, 2)]})
        estimate = monte_carlo_count(query, database, samples=5)
        assert estimate.estimate == 1.0
        assert estimate.samples == 1
        assert estimate.exact
        assert estimate.half_width == 0.0

    def test_sampled_run_is_not_exact(self):
        estimate = monte_carlo_count(PATH, PATH_DB, samples=100, seed=0)
        assert not estimate.exact
        assert estimate.half_width > 0.0

    def test_interval_clamped_to_space(self):
        estimate = monte_carlo_count(PATH, PATH_DB, samples=10, seed=0)
        low, high = estimate.interval
        assert 0.0 <= low <= high <= estimate.space_size

    def test_invalid_sample_count_rejected(self):
        with pytest.raises(QueryError):
            monte_carlo_count(PATH, PATH_DB, samples=0)

    def test_deterministic_with_seed(self):
        first = monte_carlo_count(PATH, PATH_DB, samples=100, seed=7)
        second = monte_carlo_count(PATH, PATH_DB, samples=100, seed=7)
        assert first == second

    def test_more_samples_tighter_interval(self):
        small = monte_carlo_count(PATH, PATH_DB, samples=100, seed=1)
        large = monte_carlo_count(PATH, PATH_DB, samples=10_000, seed=1)
        assert large.half_width < small.half_width


class TestKarpLuby:
    UNION = parse_ucq("ans(A) :- r(A, B) ; ans(A) :- s(A, C)")
    DATABASE = Database.from_dict({
        "r": [(1, 2), (2, 3)],
        "s": [(2, 9), (4, 9)],
    })

    def test_estimate_close_to_truth(self):
        true = count_union_brute_force(self.UNION, self.DATABASE)
        estimate = karp_luby_union_count(
            self.UNION, self.DATABASE, samples=3000, seed=0
        )
        assert estimate.covers(true)
        assert abs(estimate.estimate - true) < 1.0

    def test_per_disjunct_counts_exact(self):
        estimate = karp_luby_union_count(
            self.UNION, self.DATABASE, samples=50, seed=0
        )
        assert estimate.per_disjunct_counts == (2, 2)
        assert estimate.overcount == 4

    def test_empty_union_exact_zero(self):
        union = parse_ucq("ans(A) :- r(A, B), t(A) ; ans(A) :- s(A, C), t(A)")
        database = Database.from_dict({
            "r": [(1, 2)], "s": [(2, 9)], "t": [(5,)],
        })
        estimate = karp_luby_union_count(union, database, samples=10, seed=0)
        assert estimate.estimate == 0.0
        assert estimate.samples == 0
        assert estimate.exact
        assert estimate.half_width == 0.0

    def test_sampled_union_is_not_exact(self):
        estimate = karp_luby_union_count(self.UNION, self.DATABASE,
                                         samples=100, seed=0)
        assert not estimate.exact

    def test_identical_disjuncts_halve_hit_rate(self):
        union = parse_ucq("ans(A) :- r(A, B) ; ans(A) :- r(A, C)")
        database = Database.from_dict({"r": [(1, 2), (2, 3), (3, 4)]})
        estimate = karp_luby_union_count(union, database, samples=4000,
                                         seed=1)
        # True union count 3, overcount 6: hit rate should be near 1/2.
        assert estimate.covers(3)
        assert 0.4 < estimate.hits / estimate.samples < 0.6

    def test_invalid_sample_count_rejected(self):
        with pytest.raises(QueryError):
            karp_luby_union_count(self.UNION, self.DATABASE, samples=-1)

    def test_deterministic_with_seed(self):
        first = karp_luby_union_count(self.UNION, self.DATABASE,
                                      samples=200, seed=5)
        second = karp_luby_union_count(self.UNION, self.DATABASE,
                                       samples=200, seed=5)
        assert first == second


class TestStatisticalCoverage:
    """The stated (epsilon, delta) contract, measured empirically.

    Over many independent seeded runs, the fraction of runs whose
    Hoeffding interval misses the exact count must not exceed
    ``delta = 1 - confidence`` (plus slack for the finite trial count).
    Hoeffding is conservative, so observed violation rates are
    typically far below delta — the assertion guards against any
    regression that misstates the interval (e.g. scaling epsilon by
    the wrong space size, or shortcuts claiming sampled confidence).
    """

    def test_monte_carlo_interval_coverage(self):
        true = count_brute_force(PATH, PATH_DB)
        confidence = 0.95
        trials, violations = 150, 0
        for seed in range(150):
            estimate = monte_carlo_count(PATH, PATH_DB, samples=60,
                                         confidence=confidence, seed=seed)
            assert not estimate.exact
            if not estimate.covers(true):
                violations += 1
        # delta = 0.05; allow generous slack for 150 trials (the
        # binomial 99.9th percentile at p=0.05 is ~16 violations).
        assert violations <= 16, (
            f"{violations}/{trials} intervals missed the exact count "
            f"{true} — the stated 95% confidence is being violated"
        )

    def test_karp_luby_interval_coverage(self):
        true = count_union_brute_force(TestKarpLuby.UNION,
                                       TestKarpLuby.DATABASE)
        violations = sum(
            not karp_luby_union_count(
                TestKarpLuby.UNION, TestKarpLuby.DATABASE,
                samples=60, confidence=0.95, seed=seed,
            ).covers(true)
            for seed in range(150)
        )
        assert violations <= 16
