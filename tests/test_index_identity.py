"""Regression tests: the index-cache identity invariants ARCHITECTURE.md
promises.

The kernel's whole caching story rests on three object-identity
guarantees:

* a ``semijoin`` that filters nothing returns ``self`` (the instance,
  not a copy) — fixpoint passes detect convergence by identity and
  cached indexes survive;
* ``project`` onto the full schema returns ``self``;
* a cached ``index_on`` mapping is returned as-is on every subsequent
  access, never rebuilt.

Plus the PR 2 extension: ``Relation.renamed`` aliases share the row
set, the index cache and the statistics handle — canonical-space
execution depends on it.
"""

from __future__ import annotations

from repro.db.algebra import SubstitutionSet
from repro.db.relation import Relation
from repro.query.terms import make_variables

A, B, C = make_variables("A", "B", "C")


class TestSubstitutionSetIdentity:
    def test_semijoin_filtering_nothing_returns_self(self):
        left = SubstitutionSet((A, B), [(1, 2), (3, 4)])
        right = SubstitutionSet((B, C), [(2, 9), (4, 8), (4, 7)])
        assert left.semijoin(right) is left

    def test_semijoin_all_filtering_nothing_returns_self(self):
        base = SubstitutionSet((A, B), [(1, 2), (3, 4)])
        others = [
            SubstitutionSet((B,), [(2,), (4,)]),
            SubstitutionSet((A,), [(1,), (3,)]),
        ]
        assert base.semijoin_all(others) is base

    def test_disjoint_semijoin_against_nonempty_returns_self(self):
        left = SubstitutionSet((A,), [(1,), (2,)])
        right = SubstitutionSet((C,), [(9,)])
        assert left.semijoin(right) is left

    def test_project_full_schema_returns_self(self):
        relation = SubstitutionSet((A, B), [(1, 2), (3, 4)])
        assert relation.project((A, B)) is relation
        assert relation.project((B, A)) is relation  # order-insensitive

    def test_select_keeping_everything_returns_self(self):
        relation = SubstitutionSet((A, B), [(1, 2), (1, 4)])
        assert relation.select({A: 1}) is relation

    def test_index_on_cached_identity(self):
        relation = SubstitutionSet((A, B), [(1, 2), (1, 3), (2, 2)])
        assert relation.index_on([A]) is relation.index_on([A])
        assert relation.index_on((A, B)) is relation.index_on([B, A])

    def test_identity_survivor_keeps_its_indexes(self):
        """The point of the identity contract: the surviving object's
        cached indexes keep serving after a no-op semijoin."""
        left = SubstitutionSet((A, B), [(1, 2), (3, 4)])
        index = left.index_on([A])
        right = SubstitutionSet((B,), [(2,), (4,)])
        survivor = left.semijoin(right)
        assert survivor.index_on([A]) is index


class TestRelationIdentity:
    def test_index_on_cached_identity(self):
        relation = Relation("r", 2, [(1, 2), (1, 3), (2, 2)])
        assert relation.index_on((0,)) is relation.index_on((0,))
        assert relation.index_on((0, 1)) is relation.index_on((0, 1))

    def test_statistics_handle_cached(self):
        relation = Relation("r", 2, [(1, 2), (1, 3)])
        assert relation.statistics() is relation.statistics()

    def test_renamed_alias_is_cached_and_shares_caches(self):
        relation = Relation("r", 2, [(1, 2), (1, 3), (2, 2)])
        index = relation.index_on((0,))
        alias = relation.renamed("canonical_r")
        assert relation.renamed("canonical_r") is alias  # cached alias
        assert alias.rows is relation.rows
        # An index built through either name serves both.
        assert alias.index_on((0,)) is index
        fresh = alias.index_on((1,))
        assert relation.index_on((1,)) is fresh
        # One statistics handle for all aliases.
        assert alias.statistics() is relation.statistics()
        # Renaming back yields the original instance.
        assert alias.renamed("r") is relation

    def test_renamed_to_same_name_is_self(self):
        relation = Relation("r", 1, [(1,)])
        assert relation.renamed("r") is relation

    def test_renamed_alias_equality_semantics(self):
        """Aliases are real relations: equal to an independently built
        relation with the same name and rows."""
        relation = Relation("r", 2, [(1, 2)])
        alias = relation.renamed("s")
        assert alias == Relation("s", 2, [(1, 2)])
        assert alias != relation  # name participates in equality
