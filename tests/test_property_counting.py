"""Property-based tests: every counting algorithm agrees with brute force.

Hypothesis drives randomized (query, database) instances through all the
counting pipelines; brute force is the oracle.  This is the strongest
correctness guarantee in the suite — all paper algorithms are checked on
the same instances.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.counting import (
    count_acyclic,
    count_brute_force,
    count_hybrid,
    count_structural,
    count_via_hypertree,
)
from repro.counting.engine import count_answers
from repro.decomposition.ghd import find_ghd_join_tree
from repro.decomposition.hypertree import hypertree_from_join_tree
from repro.exceptions import DecompositionNotFoundError
from repro.workloads.random_instances import random_instance

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


@given(seed=seeds)
@settings(**SETTINGS)
def test_structural_counting_matches_brute_force(seed):
    query, database = random_instance(
        n_variables=5, n_atoms=4, domain_size=5,
        tuples_per_relation=16, seed=seed,
    )
    try:
        got = count_structural(query, database, max_width=2)
    except DecompositionNotFoundError:
        return
    assert got == count_brute_force(query, database)


@given(seed=seeds)
@settings(**SETTINGS)
def test_figure_13_matches_brute_force(seed):
    query, database = random_instance(
        n_variables=5, n_atoms=4, domain_size=5,
        tuples_per_relation=14, seed=seed,
    )
    tree = find_ghd_join_tree(query.hypergraph(), 2)
    if tree is None:
        return
    decomposition = hypertree_from_join_tree(tree, query, max_cover=2)
    assert count_via_hypertree(query, database, decomposition) == \
        count_brute_force(query, database)


@given(seed=seeds)
@settings(**SETTINGS)
def test_hybrid_counting_matches_brute_force(seed):
    query, database = random_instance(
        n_variables=4, n_atoms=3, domain_size=4,
        tuples_per_relation=12, seed=seed,
    )
    try:
        got = count_hybrid(query, database, width=2)
    except DecompositionNotFoundError:
        return
    assert got == count_brute_force(query, database)


@given(seed=seeds)
@settings(**SETTINGS)
def test_acyclic_counting_matches_brute_force(seed):
    query, database = random_instance(acyclic=True, n_atoms=4, seed=seed)
    quantifier_free = query.with_free(query.variables)
    assert count_acyclic(quantifier_free, database) == \
        count_brute_force(quantifier_free, database)


@given(seed=seeds)
@settings(**SETTINGS)
def test_engine_auto_matches_brute_force(seed):
    query, database = random_instance(
        n_variables=5, n_atoms=4, domain_size=4,
        tuples_per_relation=12, seed=seed,
    )
    result = count_answers(query, database, max_width=2)
    assert result.count == count_brute_force(query, database)


@given(seed=seeds)
@settings(**SETTINGS)
def test_projected_counts_never_exceed_full_counts(seed):
    """|pi_free(Q(D))| <= |Q(D)| and monotone in the free set."""
    from repro.counting.brute_force import full_join

    query, database = random_instance(
        n_variables=4, n_atoms=3, seed=seed,
    )
    joined = full_join(query, database)
    projected = joined.project(query.free_variables)
    assert len(projected) <= len(joined)
    fully_free = query.with_free(query.variables)
    assert count_brute_force(query, database) <= \
        count_brute_force(fully_free, database)
