"""Generalized hypertree decompositions and widths (paper, Section 4).

``ghw(H) <= k`` holds iff the pair ``(H, H_{V^k})`` has a tree projection,
where ``H_{V^k}`` has one hyperedge per union of at most ``k`` hyperedges of
``H`` — the view-set formulation the paper adopts.  The search engine is the
tree-projection module; this module supplies the ``V^k`` hypergraphs, width
computation by iterative deepening, and the query-level entry points that
return labelled :class:`~repro.decomposition.hypertree.Hypertree` objects.

Exact ``ghw`` is NP-hard already for ``k = 3``; the implementation is
exponential in the hypergraph size only (candidate-bag subset closure),
which is the paper's own parameterization.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional

from ..exceptions import DecompositionNotFoundError
from ..hypergraph.acyclicity import JoinTree
from ..hypergraph.hypergraph import Hypergraph, covers
from ..query.query import ConjunctiveQuery
from .hypertree import Hypertree, hypertree_from_join_tree
from .tree_projection import candidate_bags, find_tree_projection


def union_view_hypergraph(base: Hypergraph, width: int) -> Hypergraph:
    """``H_{V^k}``: hyperedges are unions of at most *width* edges of *base*."""
    edges = [e for e in base.edges if e]
    unions = set(edges)
    for size in range(2, width + 1):
        for combo in combinations(edges, size):
            merged: set = set()
            for edge in combo:
                merged.update(edge)
            unions.add(frozenset(merged))
    return Hypergraph(base.nodes, unions)


def find_ghd_join_tree(base: Hypergraph, width: int,
                       extra_cover: Optional[Hypergraph] = None
                       ) -> Optional[JoinTree]:
    """A join tree witnessing ``ghw(base) <= width`` (or ``None``).

    With *extra_cover* given, the decomposition must additionally cover that
    hypergraph's edges — the primitive underlying #-hypertree decompositions,
    where *extra_cover* is the frontier hypergraph.
    """
    views = union_view_hypergraph(base, width)
    to_cover = base if extra_cover is None else base.union(extra_cover)
    nodes = to_cover.nodes
    bags = candidate_bags(views, nodes)
    return find_tree_projection(to_cover, bags)


def generalized_hypertree_width(base: Hypergraph, max_width: Optional[int] = None
                                ) -> int:
    """Exact ``ghw`` by iterative deepening; raises if above *max_width*."""
    edges = [e for e in base.edges if e]
    if not edges:
        return 0
    ceiling = max_width if max_width is not None else len(edges)
    for width in range(1, ceiling + 1):
        if find_ghd_join_tree(base, width) is not None:
            return width
    raise DecompositionNotFoundError(
        f"ghw exceeds {ceiling} for {base.describe()}"
    )


def ghd_of_query(query: ConjunctiveQuery, width: int) -> Optional[Hypertree]:
    """A width-*width* GHD of the query's hypergraph, with atom covers.

    Returns ``None`` when no decomposition of that width exists.  The
    ``lambda`` labels are minimum atom covers, so the reported
    :meth:`~repro.decomposition.hypertree.Hypertree.width` can be smaller
    than *width* when the instance allows it.
    """
    tree = find_ghd_join_tree(query.hypergraph(), width)
    if tree is None:
        return None
    decomposition = hypertree_from_join_tree(tree, query, max_cover=width)
    if not decomposition.is_generalized_decomposition_of(query):
        raise AssertionError("constructed GHD failed validation")  # pragma: no cover
    return decomposition


def is_width_witness(tree: JoinTree, base: Hypergraph, width: int) -> bool:
    """Verify independently that a join tree witnesses ``ghw <= width``."""
    if not tree.is_valid():
        return False
    bag_hypergraph = Hypergraph(base.nodes, tree.bags)
    if not covers(base, bag_hypergraph):
        return False
    views = union_view_hypergraph(base, width)
    return covers(bag_hypergraph, views)
