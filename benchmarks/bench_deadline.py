"""Deadline-serving benchmark: exact when possible, approximate when necessary.

The acceptance bars of ISSUE 7, asserted here and recorded into
``BENCH_kernel.json`` by ``run_all.py``:

* **the heavy shape genuinely misses the deadline** — a random
  G(n, p) triangle join whose exact count takes well over the request
  deadline is measured first; the premise is checked at runtime, not
  assumed (functional-relation triangles look heavy to the cost model
  but count exactly in milliseconds, so they prove nothing).
* **100% of deadline-stamped requests answer within budget** — a
  session stream of updates and counts over a cheap database plus the
  heavy triangle, every count carrying ``deadline_ms``, replayed
  through a sharded :class:`~repro.service.MultiWriterSession`; each
  request's wall clock must not exceed its deadline.
* **approx answers are honest** — every degraded response is verified
  against the independently-computed exact count: the estimate must lie
  within its own stated ``epsilon`` at the stated ``delta``.
* **cheap shapes stay exact** — the same deadline on the cheap counts
  must not spuriously degrade them: every cheap response answers with
  an exact strategy and the exact evolving count.

Standalone usage (CI artifact)::

    PYTHONPATH=src python benchmarks/bench_deadline.py -o bench-deadline.json
"""

from __future__ import annotations

import random
import time

from repro.counting.engine import count_answers
from repro.db.database import Database
from repro.dynamic import Insert
from repro.dynamic.maintainer import MAINTAINER_BUDGET_ENV
from repro.envknobs import isolated_repro_env
from repro.query.parser import parse_query
from repro.service import (
    SESSION_SHARDS_ENV,
    SHARD_MODE_ENV,
    CountRequest,
    MultiWriterSession,
    UpdateRequest,
)
from repro.service.net import SHARD_ADDRS_ENV

#: Per-request deadline.  The heavy instance below counts exactly in
#: roughly 2x this on the reference machine — a genuine miss with
#: margin on both sides (a much faster host would break the premise,
#: a much slower one the 100%-within-budget bar).
DEADLINE_MS = 300.0

#: Random G(n, p) triangle instance.  One edge list reused as r/s/t:
#: ~12k edges, exact count ~15k via the compiled tier in ~650 ms.
HEAVY_N = 500
HEAVY_P = 0.05
HEAVY_SEED = 42

ROUNDS = 6

TRIANGLE = parse_query("ans(A, B, C) :- r(A, B), s(B, C), t(C, A)")
CHEAP = parse_query("ans(A, B) :- e(A, B)")


def _isolated_from_configured_session_env():
    """Run measurements without the CI leg's suite-wide session knobs."""
    return isolated_repro_env(**{
        MAINTAINER_BUDGET_ENV: None,
        SESSION_SHARDS_ENV: None,
        SHARD_MODE_ENV: None,
        SHARD_ADDRS_ENV: None,
    })


def heavy_database() -> Database:
    rng = random.Random(HEAVY_SEED)
    edges = [
        (i, j)
        for i in range(HEAVY_N)
        for j in range(HEAVY_N)
        if i != j and rng.random() < HEAVY_P
    ]
    return Database.from_dict({"r": edges, "s": edges, "t": edges})


def cheap_database() -> Database:
    return Database.from_dict({"e": [(i, i + 1) for i in range(20)]})


def measure_deadline() -> dict:
    heavy = heavy_database()

    # Premise: the exact count of the heavy shape misses the deadline.
    started = time.perf_counter()
    exact = count_answers(TRIANGLE, heavy).count
    exact_ms = (time.perf_counter() - started) * 1e3
    misses = exact_ms > DEADLINE_MS

    requests = []          # (kind, elapsed_ms, result)
    cheap_rows = 20
    with _isolated_from_configured_session_env(), MultiWriterSession(
            {"heavy": heavy, "cheap": cheap_database()},
            shards=2, shard_mode="thread", maintain=False,
            max_pending=4) as session:
        # One unmeasured forced-approx request warms the shard's
        # relation indexes; the measured stream starts from a serving
        # steady state.
        session.submit(CountRequest(
            TRIANGLE, "heavy", method="approx", error_budget=0.05,
        )).result()

        def timed(kind: str, job) -> None:
            begin = time.perf_counter()
            result = session.submit(job).result()
            requests.append(
                (kind, (time.perf_counter() - begin) * 1e3, result)
            )

        for round_index in range(ROUNDS):
            session.submit(UpdateRequest(
                "cheap", Insert("e", (100 + round_index, round_index)),
            )).result()
            cheap_rows += 1
            timed("cheap", CountRequest(
                CHEAP, "cheap", deadline_ms=DEADLINE_MS, label="cheap",
            ))
            timed("heavy", CountRequest(
                TRIANGLE, "heavy", deadline_ms=DEADLINE_MS, label="heavy",
            ))

    within = [elapsed <= DEADLINE_MS for _, elapsed, _ in requests]
    heavy_results = [r for kind, _, r in requests if kind == "heavy"]
    cheap_results = [r for kind, _, r in requests if kind == "cheap"]

    approx_honest = all(
        result.strategy == "approx"
        and abs(result.details["estimate"] - exact)
        <= result.details["epsilon"]
        for result in heavy_results
    )
    # The cheap database grew by one row per round: every cheap count
    # must be exact (never "approx") and track the evolution.
    expected_cheap = list(range(21, 21 + ROUNDS))
    cheap_exact = (
        all(result.strategy != "approx" for result in cheap_results)
        and [result.count for result in cheap_results] == expected_cheap
    )

    fraction = sum(within) / len(within)
    sample = heavy_results[0].details
    return {
        "deadline_workload": (
            f"{ROUNDS} rounds of insert + deadline-stamped cheap/heavy "
            f"counts; heavy = triangle on G({HEAVY_N}, {HEAVY_P}) "
            f"(seed {HEAVY_SEED}), 2-shard thread session, "
            f"deadline {DEADLINE_MS:.0f} ms"
        ),
        "deadline_ms": DEADLINE_MS,
        "deadline_exact_baseline_ms": round(exact_ms, 1),
        "deadline_exact_count": exact,
        "deadline_exact_misses": misses,
        "deadline_requests": len(requests),
        "deadline_within_fraction": fraction,
        "deadline_max_request_ms": round(
            max(elapsed for _, elapsed, _ in requests), 1
        ),
        "deadline_approx_estimate": sample["estimate"],
        "deadline_approx_epsilon": round(sample["epsilon"], 1),
        "deadline_approx_delta": sample["delta"],
        "deadline_approx_samples": sample["samples"],
        "deadline_approx_honest": approx_honest,
        "deadline_cheap_exact": cheap_exact,
        "meets_deadline_bar": (
            misses and fraction == 1.0 and approx_honest and cheap_exact
        ),
    }


_RESULT = None


def _measured() -> dict:
    """One measurement shared by the pytest entry points."""
    global _RESULT
    if _RESULT is None:
        _RESULT = measure_deadline()
    return _RESULT


def snapshot() -> dict:
    """The benchmark's JSON snapshot (merged into ``BENCH_kernel.json``)."""
    return measure_deadline()


# ----------------------------------------------------------------------
# pytest entry points (run by benchmarks/run_all.py's snapshot section)
# ----------------------------------------------------------------------
def test_heavy_shape_genuinely_misses_deadline():
    """ISSUE 7 premise: the exact count really overruns the deadline."""
    outcome = _measured()
    assert outcome["deadline_exact_misses"], (
        f"exact count finished in {outcome['deadline_exact_baseline_ms']}ms"
        f" — under the {DEADLINE_MS}ms deadline, the instance proves nothing"
    )


def test_all_requests_within_budget_and_honest():
    """ISSUE 7 bar: 100% of requests within budget, approx within its
    stated (epsilon, delta), cheap shapes still exact."""
    outcome = _measured()
    assert outcome["deadline_within_fraction"] == 1.0, (
        f"only {outcome['deadline_within_fraction']:.0%} of requests met "
        f"the deadline (worst {outcome['deadline_max_request_ms']}ms)"
    )
    assert outcome["deadline_approx_honest"], (
        "an approx answer missed its own stated epsilon against the "
        "exact count"
    )
    assert outcome["deadline_cheap_exact"], (
        "a cheap count was spuriously degraded or wrong under deadline"
    )


if __name__ == "__main__":  # pragma: no cover - CI artifact entry point
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="bench-deadline.json")
    args = parser.parse_args()
    result = snapshot()
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))
    failed = []
    if not result["deadline_exact_misses"]:
        failed.append("the heavy shape's exact count fits the deadline "
                      "(premise broken)")
    if result["deadline_within_fraction"] != 1.0:
        failed.append("not every request answered within its deadline")
    if not result["deadline_approx_honest"]:
        failed.append("an approx answer missed its stated epsilon")
    if not result["deadline_cheap_exact"]:
        failed.append("cheap shapes were spuriously degraded")
    for message in failed:
        print(f"FAILED: {message}", file=sys.stderr)
    if failed:
        sys.exit(1)
