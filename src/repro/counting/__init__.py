"""Counting algorithms: brute force, acyclic DP, structural, hybrid, Fig. 13."""

from .acyclic import bags_for_acyclic_query, count_acyclic, count_join_tree
from .brute_force import answers, count_brute_force, full_join
from .engine import (
    STRATEGIES,
    CountResult,
    Strategy,
    StrategyContext,
    clear_engine_memo,
    count_answers,
    register_strategy,
    registered_strategies,
    unregister_strategy,
)
from .plan_cache import (
    PersistentPlanCache,
    PlanCache,
    default_plan_cache,
    relation_content_tag,
    set_default_plan_cache,
    stable_key_digest,
)
from .enumeration import enumerate_answers, iter_answers
from .explain import Explanation, explain, render_join_tree
from .semiring import (
    BOOLEAN,
    COUNTING,
    MAX_TROPICAL,
    MIN_TROPICAL,
    Semiring,
    aggregate_join_tree,
)
from .views_counting import count_with_view_database
from .hybrid import count_hybrid, count_with_hybrid_decomposition
from .sharp_relations import (
    count_sharp_relations,
    count_via_hypertree,
    initial_sharp_relation,
    sharp_semijoin,
)
from .starsize import (
    core_quantified_star_size,
    count_durand_mengel,
    durand_mengel_parameters,
    maximum_independent_set_size,
    quantified_star_size,
    star_size_of_frontier,
)
from .structural import (
    count_structural,
    count_with_decomposition,
    exact_bag_relations,
)

__all__ = [
    "enumerate_answers",
    "iter_answers",
    "Explanation",
    "explain",
    "render_join_tree",
    "BOOLEAN",
    "COUNTING",
    "MAX_TROPICAL",
    "MIN_TROPICAL",
    "Semiring",
    "aggregate_join_tree",
    "count_with_view_database",
    "bags_for_acyclic_query",
    "count_acyclic",
    "count_join_tree",
    "answers",
    "count_brute_force",
    "full_join",
    "STRATEGIES",
    "CountResult",
    "Strategy",
    "StrategyContext",
    "PersistentPlanCache",
    "PlanCache",
    "clear_engine_memo",
    "count_answers",
    "default_plan_cache",
    "relation_content_tag",
    "set_default_plan_cache",
    "stable_key_digest",
    "register_strategy",
    "registered_strategies",
    "unregister_strategy",
    "count_hybrid",
    "count_with_hybrid_decomposition",
    "count_sharp_relations",
    "count_via_hypertree",
    "initial_sharp_relation",
    "sharp_semijoin",
    "core_quantified_star_size",
    "count_durand_mengel",
    "durand_mengel_parameters",
    "maximum_independent_set_size",
    "quantified_star_size",
    "star_size_of_frontier",
    "count_structural",
    "count_with_decomposition",
    "exact_bag_relations",
]
