"""Compiled plan execution: lower cached decompositions to flat programs.

After PRs 1-5 the engine pays the *planning* cost exactly once per query
shape (canonical fingerprints, shared :class:`~repro.counting.plan_cache.
PlanCache`, on-disk envelopes, warm-started worker pools) but still
re-interprets every cached plan over generic schema-carrying operators on
every execution: each count re-derives shared columns, rebuilds key
extractors, and re-runs the full reducer even though all of that is a
function of the *decomposition*, not the data.  This module adds the
missing tier.

:func:`lower_acyclic` / :func:`lower_structural` lower a fixed join tree
(respectively a fixed :class:`~repro.decomposition.sharp.
SharpDecomposition`) into a :class:`CompiledProgram`: a **data-only**
description — atom scans with resolved output permutations, per-bag fused
semijoin-then-project fold schedules, a position-based reducer schedule,
free-variable projections, and a flat join-tree DP whose inner loop is a
list of ``(extractor, child aggregate)`` steps.  Programs contain plain
strings/ints/tuples plus a content digest, never closures or pickled
code, so they ride the ordinary plan-cache envelopes
(:mod:`repro.decomposition.serialize`) and warm-start across processes;
:data:`~repro.decomposition.serialize.COMPILED_FORMAT_VERSION` is baked
into their cache key so a format bump silently orphans stale artifacts.

:func:`link` turns a program into an executable — verifying the digest,
resolving every position tuple to a memoized C-speed
:func:`~repro.db.algebra._row_getter` extractor, and memoizing the result
per digest so repeated executions of a cached plan share one linked
object.  Execution itself never touches schemas:

* **Acyclic programs** skip the full reducer entirely.  On a join tree
  with the running-intersection property, edge-consistent per-bag row
  choices glue bijectively to join tuples, and the bottom-up counting DP
  already propagates zero aggregates for dangling rows — reduction would
  only redo that filtering a second time.
* **Structural programs** run one compiled reduction
  (:class:`~repro.consistency.local.CompiledReducer`) *before* the free
  projection — required for exactness of the Theorem 3.7 algorithm (a
  dangling bag row can create phantom projected tuples) — and none after:
  globally consistent bags stay consistent under projection.
* Leaf bags never materialize count tables: the parent aggregates them
  directly with ``Counter(map(key_of, rows))``, which runs entirely in C.

The tier is on by default; ``REPRO_COMPILED=0`` in the environment or
:func:`set_compiled_enabled` (the CLI's ``--no-compiled``) opts out, and
the ``auto`` strategy then falls back to the interpreted paths.

When every relation a program scans is a
:class:`~repro.db.columnar.ColumnarRelation` (and numpy is importable),
the linked executable runs a **columnar** rendition of the same program:
scans become vectorized masks over int64 code columns, folds become
code-space hash joins / ``isin`` semijoin filters, the reducer becomes a
schedule of frame semijoins, and the DP aggregates become sorted-key
group tables probed with ``searchsorted``
(:class:`~repro.db.columnar.KeyAggregate`).  The program *description*
and its digest are backend-agnostic — the columnar path is resolved at
link/execution time, so cached artifacts are shared between backends —
and any input the kernels cannot handle exactly
(:class:`~repro.db.columnar.ColumnarFallback`: mixed backends, key
spaces or counts that would overflow int64) falls back to the tuple
path, which is always exact.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from operator import itemgetter

from ..consistency.local import CompiledReducer
from ..db.algebra import _row_getter
from ..db.columnar import (
    ColumnarFallback,
    ColumnarRelation,
    KeyAggregate,
    columnar_kernels_available,
    intersect_frames,
    join_frames,
    project_frame,
    scan_frame,
    semijoin_frames,
)
from ..db.database import Database
from ..decomposition.sharp import SharpDecomposition
from ..envknobs import env_flag
from ..exceptions import QueryError, SchemaError
from ..hypergraph.acyclicity import JoinTree, require_join_tree
from ..query.query import ConjunctiveQuery
from ..query.terms import Constant, Variable

__all__ = [
    "COMPILED_ENV",
    "AtomScan",
    "FoldStep",
    "BagStep",
    "DPChild",
    "DPStep",
    "CompiledProgram",
    "compiled_enabled",
    "set_compiled_enabled",
    "lower_acyclic",
    "lower_structural",
    "link",
]

#: Environment opt-out: ``REPRO_COMPILED=0`` disables the compiled tier
#: (the ``auto`` strategy then never consults it and the maintainers run
#: their interpreted repair paths).
COMPILED_ENV = "REPRO_COMPILED"

#: Programmatic override (the CLI's ``--no-compiled``): ``None`` defers
#: to the environment, a bool wins outright.
_FORCED: Optional[bool] = None


def compiled_enabled() -> bool:
    """Is the compiled execution tier enabled right now?

    Checked per call (not cached at import) so tests and long-lived
    services can flip ``REPRO_COMPILED`` without reloading modules.
    Accepts the usual boolean spellings (``0/1/true/false/on/off``);
    anything else warns once (see :mod:`repro.envknobs`) and leaves the
    tier enabled.
    """
    if _FORCED is not None:
        return _FORCED
    return env_flag(COMPILED_ENV, True)


def set_compiled_enabled(value: Optional[bool]) -> None:
    """Force the compiled tier on/off; ``None`` restores the env check."""
    global _FORCED
    _FORCED = value


# ----------------------------------------------------------------------
# Program description (plain data — everything here pickles and renders
# deterministically for the digest; no closures, ever)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AtomScan:
    """One atom's rows, matched and permuted into bag order.

    ``out_positions[i]`` is the relation column feeding output column
    ``i``; *constraints* pin columns to constant values and *equalities*
    equate columns bound by a repeated variable — exactly the
    :meth:`~repro.db.algebra.SubstitutionSet.from_atom` semantics, with
    the downstream projection already fused into ``out_positions``.
    """

    relation: str
    arity: int
    out_positions: Tuple[int, ...]
    constraints: Tuple[Tuple[int, Hashable], ...] = ()
    equalities: Tuple[Tuple[int, int], ...] = ()


@dataclass(frozen=True)
class FoldStep:
    """Join scan output *part* into the running intermediate.

    ``key_positions`` / ``part_positions`` extract the (equal-length)
    join keys from the intermediate row and the part row;
    ``out_positions`` index into the *concatenation* ``row + part_row``
    and carry the fused projection onto the columns still needed.
    ``bound_width`` is the intermediate row's length before this step:
    when every out position falls below it, the part contributes no
    output columns and the linker fuses the step into a semijoin filter
    (key-set probe, no pair materialization).
    """

    part: int
    key_positions: Tuple[int, ...]
    part_positions: Tuple[int, ...]
    out_positions: Tuple[int, ...]
    bound_width: int


@dataclass(frozen=True)
class BagStep:
    """Materialize one bag relation.

    ``intersect=True`` (acyclic bags: every scan has the same variable
    set, hence the same output schema) intersects the scan outputs as
    sets.  Otherwise the bag is ``folds`` applied to scan ``start``,
    with ``project_positions`` as a defensive trailing projection
    (``None`` = the fold schedule already lands on the bag schema, the
    common case since projections are pushed into the steps).
    """

    scans: Tuple[AtomScan, ...]
    intersect: bool
    start: int = 0
    folds: Tuple[FoldStep, ...] = ()
    project_positions: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class DPChild:
    """One child aggregate consulted by a DP vertex.

    ``leaf`` children never materialized a count table — the parent
    aggregates their (projected) rows directly via
    ``Counter(map(key_of, rows))``.
    """

    child: int
    my_positions: Tuple[int, ...]
    child_positions: Tuple[int, ...]
    leaf: bool


@dataclass(frozen=True)
class DPStep:
    """One vertex of the bottom-up counting DP (children come earlier)."""

    vertex: int
    root: bool
    children: Tuple[DPChild, ...]


@dataclass(frozen=True)
class CompiledProgram:
    """A lowered, data-only counting program (see the module docstring).

    ``reducer`` is the :meth:`~repro.consistency.local.CompiledReducer.
    steps` schedule run before the free projection (structural programs
    only; acyclic programs carry ``None`` — the DP's zero propagation
    makes reduction redundant for counting).  ``free_positions[i]`` is
    bag *i*'s projection onto the free variables (``None`` = identity).
    ``digest`` is a content checksum over everything else, verified by
    :func:`link` so a corrupted or hand-edited artifact can never
    execute.
    """

    kind: str                      # "acyclic" | "structural"
    source: str                    # query name the program was lowered from
    width: Optional[int]           # decomposition width (structural only)
    bags: Tuple[BagStep, ...]
    reducer: Optional[tuple]
    free_positions: Tuple[Optional[Tuple[int, ...]], ...]
    dp: Tuple[DPStep, ...]
    digest: str


def _description(kind: str, source: str, width: Optional[int],
                 bags: tuple, reducer: Optional[tuple],
                 free_positions: tuple, dp: tuple) -> str:
    return repr((kind, source, width, bags, reducer, free_positions, dp))


def program_digest(program: CompiledProgram) -> str:
    """The content digest of *program*'s description (digest excluded)."""
    text = _description(program.kind, program.source, program.width,
                        program.bags, program.reducer,
                        program.free_positions, program.dp)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _finish(kind: str, source: str, width: Optional[int], bags: tuple,
            reducer: Optional[tuple], free_positions: tuple,
            dp: tuple) -> CompiledProgram:
    digest = hashlib.sha256(
        _description(kind, source, width, bags, reducer, free_positions,
                     dp).encode("utf-8")
    ).hexdigest()
    return CompiledProgram(kind, source, width, bags, reducer,
                           free_positions, dp, digest)


# ----------------------------------------------------------------------
# Lowering helpers
# ----------------------------------------------------------------------
def _sorted_schema(variables) -> Tuple[Variable, ...]:
    return tuple(sorted(variables, key=lambda v: v.name))


def _scan_for_atom(atom, out_schema: Tuple[Variable, ...]) -> AtomScan:
    """Lower one atom match, output permuted onto *out_schema*.

    *out_schema* must be a subset of the atom's variables; the
    projection is fused into the scan's output positions.
    """
    first_position: Dict[Variable, int] = {}
    for index, term in enumerate(atom.terms):
        if isinstance(term, Variable) and term not in first_position:
            first_position[term] = index
    constraints: List[Tuple[int, Hashable]] = []
    equalities: List[Tuple[int, int]] = []
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constraints.append((index, term.value))
        elif first_position[term] != index:
            equalities.append((index, first_position[term]))
    return AtomScan(
        relation=atom.relation,
        arity=atom.arity,
        out_positions=tuple(first_position[v] for v in out_schema),
        constraints=tuple(constraints),
        equalities=tuple(equalities),
    )


def _fold_order(seed: int, schemas: Sequence[Tuple[Variable, ...]],
                pending: List[int]) -> List[int]:
    """Static analogue of the interpreted greedy connectivity order:
    prefer a part sharing a variable with what is already bound (a
    proper join) over a cross product, smallest schema first."""
    bound: Set[Variable] = set(schemas[seed])
    ordered: List[int] = []
    remaining = list(pending)
    while remaining:
        pick = next(
            (i for i in remaining if bound & set(schemas[i])),
            remaining[0],
        )
        remaining.remove(pick)
        ordered.append(pick)
        bound.update(schemas[pick])
    return ordered


def _lower_bag_join(part_schemas: Sequence[Tuple[Variable, ...]],
                    keep: frozenset) -> Tuple[int, Tuple[FoldStep, ...],
                                              Tuple[Variable, ...]]:
    """Lower ``pi_keep(part_0 |><| ... |><| part_n)`` to a fold schedule.

    Returns ``(start part, fold steps, final schema)`` where every
    intermediate is projected down to the columns still needed (the
    ``keep`` set plus join columns of parts not yet folded), mirroring
    the interpreted :func:`~repro.db.algebra.join_project` push-down.
    """
    order = sorted(range(len(part_schemas)),
                   key=lambda i: (len(part_schemas[i]), i))
    start = order[0]
    ordered = _fold_order(start, part_schemas, order[1:])
    schema = part_schemas[start]
    steps: List[FoldStep] = []
    for rank, part in enumerate(ordered):
        part_schema = part_schemas[part]
        part_vars = set(part_schema)
        needed = set(keep)
        for later in ordered[rank + 1:]:
            needed.update(part_schemas[later])
        shared = tuple(v for v in schema if v in part_vars)
        combined: Dict[Variable, int] = {
            v: i for i, v in enumerate(schema)
        }
        offset = len(schema)
        for i, v in enumerate(part_schema):
            combined.setdefault(v, offset + i)
        out_schema = _sorted_schema(
            (set(schema) | part_vars) & needed
        )
        schema_index = {v: i for i, v in enumerate(schema)}
        part_index = {v: i for i, v in enumerate(part_schema)}
        steps.append(FoldStep(
            part=part,
            key_positions=tuple(schema_index[v] for v in shared),
            part_positions=tuple(part_index[v] for v in shared),
            out_positions=tuple(combined[v] for v in out_schema),
            bound_width=len(schema),
        ))
        schema = out_schema
    return start, tuple(steps), schema


def _lower_dp(schemas: Sequence[Tuple[Variable, ...]],
              tree: JoinTree) -> Tuple[DPStep, ...]:
    """The bottom-up counting DP over *tree* with per-vertex *schemas*."""
    order = tree.rooted_orders()
    has_children = {vertex for vertex, _parent, children in order
                    if children}
    indexes = [{v: i for i, v in enumerate(schema)} for schema in schemas]
    steps: List[DPStep] = []
    for vertex, parent, children in order:
        mine = set(schemas[vertex])
        dp_children = []
        for child in children:
            shared = tuple(v for v in schemas[vertex]
                           if v in set(schemas[child]))
            dp_children.append(DPChild(
                child=child,
                my_positions=tuple(indexes[vertex][v] for v in shared),
                child_positions=tuple(indexes[child][v] for v in shared),
                leaf=child not in has_children,
            ))
        del mine
        steps.append(DPStep(
            vertex=vertex,
            root=parent is None,
            children=tuple(dp_children),
        ))
    return tuple(steps)


# ----------------------------------------------------------------------
# Lowering entry points
# ----------------------------------------------------------------------
def lower_acyclic(query: ConjunctiveQuery) -> CompiledProgram:
    """Lower a quantifier-free acyclic *query* to a compiled program.

    The bag layout mirrors :func:`~repro.counting.acyclic.
    bags_for_acyclic_query` — one bag per join-tree vertex, atoms with
    identical variable sets intersected inside their bag — but the full
    reducer is *not* lowered: on a running-intersection tree the DP's
    zero aggregates already neutralize dangling rows, so reduction
    cannot change the count (and an empty bag short-circuits to zero
    before the DP runs).

    Raises :class:`~repro.exceptions.QueryError` for quantified queries
    and :class:`~repro.exceptions.NotAcyclicError` for cyclic ones.
    """
    if not query.is_quantifier_free():
        raise QueryError(
            f"{query.name}: compiled acyclic counting requires a "
            "quantifier-free query"
        )
    tree = require_join_tree(query.hypergraph())
    grouped: Dict[frozenset, List] = {}
    for atom in query.atoms_sorted():
        grouped.setdefault(atom.variable_set, []).append(atom)
    bag_schemas: List[Tuple[Variable, ...]] = []
    bags: List[BagStep] = []
    for bag in tree.bags:
        schema = _sorted_schema(bag)
        bag_schemas.append(schema)
        bags.append(BagStep(
            scans=tuple(_scan_for_atom(atom, schema)
                        for atom in grouped[bag]),
            intersect=True,
        ))
    return _finish(
        kind="acyclic",
        source=query.name,
        width=None,
        bags=tuple(bags),
        reducer=None,
        free_positions=tuple(None for _ in bags),
        dp=_lower_dp(bag_schemas, tree),
    )


def lower_structural(query: ConjunctiveQuery,
                     decomposition: SharpDecomposition) -> CompiledProgram:
    """Lower the Theorem 3.7 pipeline for a fixed *decomposition*.

    Per bag: the witness view's source atoms plus the hosted core atoms
    (same assignment as the interpreted path, via
    :func:`~repro.counting.structural.host_core_atoms`) are fused into
    one fold schedule with projections pushed inside.  One compiled
    reduction runs before the free projection — required for exactness,
    since a dangling bag row surviving into the projection could create
    phantom free-variable tuples — and none after, because globally
    consistent bags stay globally consistent under projection.
    """
    from .structural import host_core_atoms  # local import, avoids cycle

    tree = decomposition.tree
    views = decomposition.views
    hosted = host_core_atoms(decomposition)
    free = query.free_variables
    bag_schemas: List[Tuple[Variable, ...]] = []
    bags: List[BagStep] = []
    free_positions: List[Optional[Tuple[int, ...]]] = []
    projected_schemas: List[Tuple[Variable, ...]] = []
    for index, (bag, view_name) in enumerate(
            zip(tree.bags, decomposition.bag_views)):
        atoms = list(views[view_name].source_atoms) + list(hosted[index])
        part_schemas = [_sorted_schema(atom.variables) for atom in atoms]
        start, folds, schema = _lower_bag_join(part_schemas, frozenset(bag))
        scans = []
        for part, (atom, part_schema) in enumerate(
                zip(atoms, part_schemas)):
            if part == start and not folds:
                # Single-part bag: fuse the bag projection into the scan.
                out = tuple(v for v in part_schema if v in bag)
                schema = out
            else:
                needed = set(bag)
                for other, other_schema in enumerate(part_schemas):
                    if other != part:
                        needed.update(other_schema)
                out = tuple(v for v in part_schema if v in needed)
            scans.append(_scan_for_atom(atom, out))
        # Fold schedules were lowered over full part schemas; re-lower
        # over the pre-projected scan outputs so positions line up.
        if folds:
            scan_schemas = [
                tuple(v for v in part_schema
                      if v in set(bag) | set().union(
                          *(set(part_schemas[o])
                            for o in range(len(part_schemas)) if o != p)
                      ))
                for p, part_schema in enumerate(part_schemas)
            ]
            start, folds, schema = _lower_bag_join(scan_schemas,
                                                   frozenset(bag))
        project = None
        wanted = tuple(v for v in schema if v in bag)
        if wanted != schema:  # pragma: no cover - push-down lands on bag
            schema_index = {v: i for i, v in enumerate(schema)}
            project = tuple(schema_index[v] for v in wanted)
            schema = wanted
        bags.append(BagStep(
            scans=tuple(scans),
            intersect=False,
            start=start,
            folds=folds,
            project_positions=project,
        ))
        bag_schemas.append(schema)
        projected = tuple(v for v in schema if v in free)
        projected_schemas.append(projected)
        if projected == schema:
            free_positions.append(None)
        else:
            schema_index = {v: i for i, v in enumerate(schema)}
            free_positions.append(
                tuple(schema_index[v] for v in projected)
            )
    reducer = CompiledReducer(bag_schemas, tree).steps()
    return _finish(
        kind="structural",
        source=query.name,
        width=decomposition.width(),
        bags=tuple(bags),
        reducer=reducer,
        free_positions=tuple(free_positions),
        dp=_lower_dp(projected_schemas, tree),
    )


# ----------------------------------------------------------------------
# Linking and execution
# ----------------------------------------------------------------------
def _key_getter(positions: Tuple[int, ...]):
    """A probe-key extractor: a single position yields the bare value.

    Probe keys never leave the executor (fold indexes, DP aggregates,
    reducer key sets), so both sides of every probe can agree on scalar
    keys — a bare ``itemgetter`` runs at C speed and hashing a scalar
    beats hashing a 1-tuple.  Row *outputs* keep :func:`_row_getter`
    (always a tuple, matching the bag schema).
    """
    if len(positions) == 1:
        return itemgetter(positions[0])
    return _row_getter(positions)


class _LinkedScan:
    """An :class:`AtomScan` with its extractor resolved."""

    __slots__ = ("relation", "arity", "out", "identity", "constraints",
                 "equalities")

    def __init__(self, scan: AtomScan):
        self.relation = scan.relation
        self.arity = scan.arity
        self.out = _row_getter(scan.out_positions)
        self.identity = (not scan.constraints and not scan.equalities
                         and scan.out_positions == tuple(range(scan.arity)))
        self.constraints = scan.constraints
        self.equalities = scan.equalities

    def rows(self, database: Database) -> set:
        relation = database[self.relation]
        if relation.arity != self.arity:
            raise SchemaError(
                f"compiled scan of {self.relation!r} expects arity "
                f"{self.arity}, relation has {relation.arity}"
            )
        if self.identity:
            # The executor never mutates bag rows in place (intersection
            # rebinds, folds build fresh sets), so the relation's own
            # frozenset is safe to hand out without a copy.
            return relation.rows
        if not self.constraints and not self.equalities:
            return set(map(self.out, relation))
        constraints = self.constraints
        equalities = self.equalities
        out = self.out
        matched = set()
        add = matched.add
        for row in relation:
            if all(row[i] == value for i, value in constraints) and \
                    all(row[i] == row[j] for i, j in equalities):
                add(out(row))
        return matched


class _LinkedBag:
    """A :class:`BagStep` with extractors resolved."""

    __slots__ = ("scans", "intersect", "start", "folds", "project")

    def __init__(self, bag: BagStep):
        self.scans = tuple(_LinkedScan(scan) for scan in bag.scans)
        self.intersect = bag.intersect
        self.start = bag.start
        folds = []
        for step in bag.folds:
            if all(p < step.bound_width for p in step.out_positions):
                # The part contributes no output columns: fuse the step
                # into a semijoin filter (``out_of`` applies to the
                # bound row alone; ``None`` = it is the identity).
                out_of = (None
                          if step.out_positions ==
                          tuple(range(step.bound_width))
                          else _row_getter(step.out_positions))
                semi = True
            else:
                out_of = _row_getter(step.out_positions)
                semi = False
            folds.append((semi, step.part,
                          _key_getter(step.part_positions),
                          _key_getter(step.key_positions), out_of))
        self.folds = tuple(folds)
        self.project = (None if bag.project_positions is None
                        else _row_getter(bag.project_positions))

    def rows(self, database: Database) -> set:
        if self.intersect:
            first = self.scans[0].rows(database)
            for scan in self.scans[1:]:
                if not first:
                    return first
                first &= scan.rows(database)
            return first
        outputs = [scan.rows(database) for scan in self.scans]
        current = outputs[self.start]
        for semi, part, part_key, key_of, out_of in self.folds:
            if not current:
                return current
            if semi:
                keys = set(map(part_key, outputs[part]))
                if out_of is None:
                    current = {row for row in current
                               if key_of(row) in keys}
                else:
                    current = {out_of(row) for row in current
                               if key_of(row) in keys}
                continue
            index: Dict[tuple, list] = {}
            for part_row in outputs[part]:
                key = part_key(part_row)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [part_row]
                else:
                    bucket.append(part_row)
            joined: set = set()
            add = joined.add
            get = index.get
            for row in current:
                bucket = get(key_of(row))
                if bucket:
                    for part_row in bucket:
                        add(out_of(row + part_row))
            current = joined
        if self.project is not None and current:
            current = set(map(self.project, current))
        return current


#: Count bounds must stay well inside int64 for the vectorized DP.
_MAX_TOTAL = 2 ** 62


class _ColumnarBag:
    """A :class:`BagStep` run over code-column frames."""

    __slots__ = ("scans", "intersect", "start", "folds", "project")

    def __init__(self, bag: BagStep):
        self.scans = bag.scans
        self.intersect = bag.intersect
        self.start = bag.start
        self.folds = tuple(
            (all(p < step.bound_width for p in step.out_positions), step)
            for step in bag.folds
        )
        self.project = bag.project_positions

    def frame(self, database: Database):
        def scanned(scan: AtomScan):
            return scan_frame(database[scan.relation], scan.out_positions,
                              scan.constraints, scan.equalities)

        if self.intersect:
            current = scanned(self.scans[0])
            for scan in self.scans[1:]:
                if current.n == 0:
                    return current
                current = intersect_frames(current, scanned(scan))
            return current
        frames = [scanned(scan) for scan in self.scans]
        current = frames[self.start]
        for semi, step in self.folds:
            if current.n == 0:
                return current
            part = frames[step.part]
            if semi:
                current = semijoin_frames(current, part,
                                          step.key_positions,
                                          step.part_positions)
                if step.out_positions != tuple(range(step.bound_width)):
                    current = project_frame(current, step.out_positions)
            else:
                current = join_frames(current, part, step.key_positions,
                                      step.part_positions,
                                      step.out_positions, step.bound_width)
        if self.project is not None and current.n:
            current = project_frame(current, self.project)
        return current


def _leaf_aggregate(frame, positions: Tuple[int, ...]) -> KeyAggregate:
    """Group-count a (projected, deduplicated) leaf frame by *positions* —
    the columnar ``Counter(map(key_of, rows))``, cached on the host
    relation when the frame is a pure derivation of one."""
    return frame.cached(("agg", positions), lambda: KeyAggregate.over(
        [frame.cols[p] for p in positions],
        [frame.dicts[p] for p in positions], frame.n,
    ))


class _ColumnarProgram:
    """The columnar rendition of one compiled program.

    Semantically identical to the tuple executor — same bag schedules,
    same sequential reducer passes, same bottom-up DP — just phrased
    over frames and :class:`KeyAggregate` tables.  Counts are exact:
    every step that could leave int64 raises :class:`ColumnarFallback`
    instead, and the caller reruns the tuple path.
    """

    __slots__ = ("_bags", "_reducer", "_free", "_dp", "_digest")

    def __init__(self, program: CompiledProgram):
        self._bags = tuple(_ColumnarBag(bag) for bag in program.bags)
        self._reducer = program.reducer
        self._free = program.free_positions
        self._dp = program.dp
        self._digest = program.digest

    def supports(self, database: Database) -> bool:
        """All scanned relations present, arity-consistent, columnar.

        Missing relations / arity mismatches return ``False`` so the
        tuple path raises its usual errors.
        """
        for bag in self._bags:
            for scan in bag.scans:
                relation = database.get(scan.relation)
                if (not isinstance(relation, ColumnarRelation)
                        or relation.arity != scan.arity):
                    return False
        return True

    def _reduce(self, frames: list) -> list:
        """The :class:`~repro.consistency.local.CompiledReducer` schedule
        as frame semijoins (same sequential up/down passes)."""
        _size, up, down = self._reducer
        for vertex, probes in up:
            frame = frames[vertex]
            for mine, child, child_positions in probes:
                if frame.n == 0:
                    break
                frame = semijoin_frames(frame, frames[child], mine,
                                        child_positions)
            frames[vertex] = frame
        for vertex, mine, parent, parent_positions in down:
            frame = frames[vertex]
            if frame.n == 0:
                continue
            frames[vertex] = semijoin_frames(frame, frames[parent], mine,
                                             parent_positions)
        return frames

    def _staged(self, database: Database):
        """The reduced, free-projected bag frames, or ``None`` when an
        empty bag (or empty reduction) already forces count 0.

        Frames are a pure function of the program and the (immutable)
        scanned relations, so the stage memoizes on the first scanned
        relation keyed by the *identities* of all of them — the cached
        tuple holds the relations strongly, so the ``is`` checks can
        never be fooled by a recycled object.  The hot maintained-stream
        loop (many counts, one database) pays for folds, reduction and
        projection once; any update rebuilds a relation and thereby
        rotates the entry.
        """
        relations = tuple(
            database[scan.relation]
            for bag in self._bags for scan in bag.scans
        )
        key = ("staged", self._digest)
        host = relations[0] if relations else None
        entry = None if host is None else host._kcache.get(key)
        if entry is not None:
            cached_relations, projected = entry
            if len(cached_relations) == len(relations) and all(
                    cached is current for cached, current
                    in zip(cached_relations, relations)):
                return projected
        projected = None
        frames = []
        for bag in self._bags:
            frame = bag.frame(database)
            if frame.n == 0:
                frames = None
                break
            frames.append(frame)
        if frames is not None:
            if self._reducer is not None:
                frames = self._reduce(frames)
                if any(frame.n == 0 for frame in frames):
                    frames = None  # empty propagation: any empty => 0
        if frames is not None:
            projected = [
                frame if positions is None
                else project_frame(frame, positions)
                for frame, positions in zip(frames, self._free)
            ]
        if host is not None:
            host._kcache[key] = (relations, projected)
        return projected

    def count(self, database: Database) -> int:
        projected = self._staged(database)
        if projected is None:
            return 0
        counts: Dict[int, tuple] = {}  # vertex -> (frame, totals, max)
        answer = 1
        for step in self._dp:
            frame = projected[step.vertex]
            if not step.children:
                if step.root:  # isolated component: plain cardinality
                    answer *= frame.n
                continue
            aggregates = []
            bound = 1
            for child in step.children:
                if child.leaf:
                    aggregate = _leaf_aggregate(projected[child.child],
                                                child.child_positions)
                else:
                    child_frame, totals, biggest = counts.pop(child.child)
                    if biggest * max(child_frame.n, 1) >= _MAX_TOTAL:
                        raise ColumnarFallback("group total exceeds int64")
                    aggregate = KeyAggregate.over(
                        [child_frame.cols[p]
                         for p in child.child_positions],
                        [child_frame.dicts[p]
                         for p in child.child_positions],
                        child_frame.n, weights=totals,
                    )
                aggregates.append((child.my_positions, aggregate))
                bound *= max(aggregate.max_total, 1)
            if bound * max(frame.n, 1) >= _MAX_TOTAL:
                raise ColumnarFallback("count bound exceeds int64")
            totals = None
            for my_positions, aggregate in aggregates:
                found = aggregate.counts_for(
                    [frame.cols[p] for p in my_positions],
                    [frame.dicts[p] for p in my_positions], frame.n,
                )
                totals = found if totals is None else totals * found
            if step.root:
                answer *= int(totals.sum())
                if not answer:
                    return 0
            else:
                keep = totals > 0
                if not bool(keep.all()):
                    survivors = keep.nonzero()[0]
                    frame = frame.take(survivors)
                    totals = totals[survivors]
                biggest = int(totals.max()) if frame.n else 0
                counts[step.vertex] = (frame, totals, biggest)
        return answer


class _Executable:
    """A linked :class:`CompiledProgram` — call :meth:`count`.

    The tuple path below is the reference semantics; :meth:`count`
    dispatches to the columnar rendition first whenever the database
    qualifies (see :class:`_ColumnarProgram`).
    """

    __slots__ = ("program", "_bags", "_reducer", "_free", "_dp",
                 "_columnar")

    def __init__(self, program: CompiledProgram):
        self.program = program
        self._columnar = None  # built on first qualifying count
        self._bags = tuple(_LinkedBag(bag) for bag in program.bags)
        self._reducer = (None if program.reducer is None
                         else CompiledReducer.from_steps(program.reducer))
        self._free = tuple(
            None if positions is None else _row_getter(positions)
            for positions in program.free_positions
        )
        self._dp = tuple(
            (step.vertex, step.root, tuple(
                (child.child, child.leaf,
                 _key_getter(child.my_positions),
                 _key_getter(child.child_positions))
                for child in step.children
            ))
            for step in program.dp
        )

    def count(self, database: Database) -> int:
        columnar = self._columnar
        if columnar is not False:
            try:
                if columnar is None:
                    if columnar_kernels_available():
                        columnar = _ColumnarProgram(self.program)
                    else:
                        columnar = False
                    self._columnar = columnar
                if columnar is not False and columnar.supports(database):
                    return columnar.count(database)
            except ColumnarFallback:
                pass  # exactness first: rerun on the tuple path
        return self._tuple_count(database)

    def _tuple_count(self, database: Database) -> int:
        bag_rows: List[set] = []
        for bag in self._bags:
            rows = bag.rows(database)
            if not rows:
                return 0
            bag_rows.append(rows)
        if self._reducer is not None:
            bag_rows = self._reducer.reduce(bag_rows)
            if not bag_rows[0]:  # empty propagation: any empty => all
                return 0
        projected = [
            rows if project is None else set(map(project, rows))
            for rows, project in zip(bag_rows, self._free)
        ]
        counts: Dict[int, Dict[tuple, int]] = {}
        answer = 1
        for vertex, root, children in self._dp:
            rows = projected[vertex]
            if not children:
                if root:  # isolated component: plain cardinality
                    answer *= len(rows)
                continue
            aggregates = []
            for child, leaf, my_key, child_key in children:
                if leaf:
                    aggregate = Counter(map(child_key, projected[child]))
                else:
                    aggregate = {}
                    get = aggregate.get
                    for child_row, multiplicity in \
                            counts.pop(child).items():
                        key = child_key(child_row)
                        aggregate[key] = get(key, 0) + multiplicity
                aggregates.append((my_key, aggregate))
            if root:
                # Roots only contribute a scalar — never build the table.
                if len(aggregates) == 1:
                    my_key, aggregate = aggregates[0]
                    get = aggregate.get
                    # Aggregates hold strictly positive multiplicities,
                    # so filtering falsy drops exactly the misses (None).
                    total_sum = sum(filter(None, map(get, map(my_key,
                                                              rows))))
                else:
                    total_sum = 0
                    for row in rows:
                        total = 1
                        for my_key, aggregate in aggregates:
                            total *= aggregate.get(my_key(row), 0)
                            if not total:
                                break
                        total_sum += total
                answer *= total_sum
                if not answer:
                    return 0
            else:
                table: Dict[tuple, int] = {}
                for row in rows:
                    total = 1
                    for my_key, aggregate in aggregates:
                        total *= aggregate.get(my_key(row), 0)
                        if not total:
                            break
                    if total:
                        table[row] = total
                counts[vertex] = table
        return answer


#: Linked executables memoized per program digest: every execution of a
#: cached plan — across sessions, shards, and repeated counts — shares
#: one linked object (and therefore one set of resolved extractors).
_LINKED: Dict[str, _Executable] = {}


def link(program: CompiledProgram) -> _Executable:
    """Resolve *program* into an executable, verifying its digest.

    Raises :class:`~repro.decomposition.serialize.
    PlanSerializationError` when the stored digest does not match the
    program body — a corrupted artifact must never execute.
    """
    if program_digest(program) != program.digest:
        from ..decomposition.serialize import PlanSerializationError
        raise PlanSerializationError(
            "compiled program digest mismatch — artifact corrupted"
        )
    executable = _LINKED.get(program.digest)
    if executable is not None:
        return executable
    executable = _Executable(program)
    _LINKED[program.digest] = executable
    return executable
