"""Executable case-complexity machinery (Sections 5.1, 5.3, 5.4).

The paper's hardness proofs are chains of *counting slice reductions*.  Two
central links are genuinely algorithmic, and this module implements them so
that they can be run and property-tested:

* **Lemma 5.10** (:func:`count_fullcolor_via_oracle`): for queries whose
  coloring is a core, counting answers of ``fullcolor(Q)`` reduces to
  counting answers of ``Q`` itself, via (i) the product structure ``D``
  pairing variables with their colored domains, (ii) automorphism-group
  division, (iii) inclusion-exclusion over subsets ``T`` of the free
  variables, and (iv) polynomial interpolation on ``j``-fold copies
  ``D_{j,T}`` (a Vandermonde system, solved exactly over the rationals).

* **Claim 5.16 / Corollary 5.17** (:func:`count_simple_via_oracle`):
  counting answers of the *simple* query associated with (the core of the
  coloring of) ``Q`` reduces to counting answers of ``Q``, through the
  paired-domain structure ``Bhat`` and the Lemma 5.10 reduction.

Together they make the trichotomy's reduction pipeline executable: the test
suite checks both against brute force on random instances.

Queries fed to these reductions must be constant-free (the paper's setting).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import Callable, Dict, FrozenSet, Hashable, List, Sequence, Tuple

from ..counting.brute_force import count_brute_force
from ..db.database import Database
from ..db.relation import Relation
from ..homomorphism.core import colored_core
from ..homomorphism.solver import iter_homomorphisms, query_as_database
from ..query.atom import Atom
from ..query.coloring import color_symbol, fullcolor, is_color_atom, uncolor
from ..query.query import ConjunctiveQuery
from ..query.terms import Constant, Variable

#: An oracle solving count(Q, D) for a fixed query Q.
CountOracle = Callable[[ConjunctiveQuery, Database], int]


@dataclass(frozen=True)
class OracleCallLog:
    """Bookkeeping for reduction demonstrations: how often the oracle ran."""

    calls: int
    databases_built: int


def _require_constant_free(query: ConjunctiveQuery) -> None:
    for atom in query.atoms:
        for term in atom.terms:
            if isinstance(term, Constant):
                raise ValueError(
                    "case-complexity reductions require constant-free queries"
                )


# ----------------------------------------------------------------------
# Lemma 5.10: simulating unary relations
# ----------------------------------------------------------------------
def automorphism_free_restrictions(query: ConjunctiveQuery) -> int:
    """``|I|``: the number of distinct restrictions to ``free(Q)`` of
    automorphisms of ``Q`` (viewed as a structure).

    Automorphisms of a finite structure are exactly its bijective
    endomorphisms, enumerated through the homomorphism solver.
    """
    variables = query.variables
    target = query_as_database(query)
    seen: set = set()
    for hom in iter_homomorphisms(query, target):
        if len(set(hom.values())) == len(variables):
            seen.add(frozenset(
                (v, hom[v]) for v in query.free_variables
            ))
    return max(len(seen), 1)


def _paired_structure(query: ConjunctiveQuery, colored_db: Database
                      ) -> Database:
    """The structure ``D`` of Lemma 5.10 over the paired domain
    ``{(X, b) | b in r_X^B}``."""
    domain_of: Dict[Variable, List[Hashable]] = {}
    for variable in sorted(query.variables, key=lambda v: v.name):
        relation = colored_db.get(color_symbol(variable))
        domain_of[variable] = sorted(
            (row[0] for row in relation) if relation is not None else (),
            key=repr,
        )
    rows_by_symbol: Dict[str, set] = {}
    arities: Dict[str, int] = {}
    for atom in query.atoms_sorted():
        arities[atom.relation] = atom.arity
        rows_by_symbol.setdefault(atom.relation, set())
        base = colored_db.get(atom.relation)
        if base is None:
            continue
        pattern: Tuple[Variable, ...] = atom.terms  # constant-free
        for row in base:
            if all(row[i] in domain_of[pattern[i]] for i in range(len(row))):
                rows_by_symbol[atom.relation].add(tuple(
                    (pattern[i].name, row[i]) for i in range(len(row))
                ))
    return Database(
        Relation(symbol, arities[symbol], rows_by_symbol[symbol])
        for symbol in rows_by_symbol
    )


def _copied_structure(paired: Database, copy_set: FrozenSet[str],
                      copies: int) -> Database:
    """``D_{j,T}``: blow up elements ``(X, b)`` with ``X in T`` into
    *copies* tagged clones."""

    def clones(value) -> List:
        name, base = value
        if name in copy_set:
            return [(name, k, base) for k in range(copies)]
        return [value]

    relations = []
    for symbol in paired:
        base = paired[symbol]
        rows: set = set()
        for row in base:
            expanded: List[List] = [clones(value) for value in row]
            stack: List[Tuple] = [()]
            for options in expanded:
                stack = [prefix + (option,)
                         for prefix in stack for option in options]
            rows.update(stack)
        relations.append(Relation(symbol, base.arity, rows))
    return Database(relations)


def _solve_vandermonde(points: Sequence[int], values: Sequence[int]
                       ) -> List[Fraction]:
    """Solve ``sum_i c_i * x^i = y`` exactly for the coefficients ``c_i``."""
    n = len(points)
    matrix = [[Fraction(x) ** i for i in range(n)] for x in points]
    augmented = [row + [Fraction(values[r])] for r, row in enumerate(matrix)]
    for col in range(n):
        pivot = next(r for r in range(col, n) if augmented[r][col] != 0)
        augmented[col], augmented[pivot] = augmented[pivot], augmented[col]
        inv = Fraction(1) / augmented[col][col]
        augmented[col] = [value * inv for value in augmented[col]]
        for r in range(n):
            if r != col and augmented[r][col] != 0:
                factor = augmented[r][col]
                augmented[r] = [
                    x - factor * y
                    for x, y in zip(augmented[r], augmented[col])
                ]
    return [augmented[i][n] for i in range(n)]


def count_fullcolor_via_oracle(query: ConjunctiveQuery,
                               colored_db: Database,
                               oracle: CountOracle = count_brute_force
                               ) -> int:
    """Lemma 5.10: ``|fullcolor(Q)(B)|`` using only an oracle for ``Q``.

    Preconditions: ``color(query)`` is a core; *colored_db* provides the
    base relations plus a unary ``r_X`` relation for every variable of the
    query; the query is constant-free.
    """
    _require_constant_free(query)
    free = sorted(query.free_variables, key=lambda v: v.name)
    f = len(free)
    paired = _paired_structure(query, colored_db)
    if f == 0:
        # No free variables: the answer is 0/1 — ask the oracle directly.
        return 1 if oracle(query, paired) > 0 else 0
    free_names = [v.name for v in free]
    size_i = automorphism_free_restrictions(query)
    total = Fraction(0)
    for t_size in range(f + 1):
        for subset in combinations(free_names, t_size):
            copy_set = frozenset(subset)
            points = list(range(1, f + 2))
            values = [
                oracle(query, _copied_structure(paired, copy_set, j))
                for j in points
            ]
            coefficients = _solve_vandermonde(points, values)
            n_t = coefficients[f]  # N_{T, f}: all free images inside T
            sign = -1 if (f - t_size) % 2 else 1
            total += sign * n_t
    answer = total / size_i
    if answer.denominator != 1 or answer < 0:
        raise ArithmeticError(
            f"reduction produced a non-integral count {answer}; "
            "was color(Q) really a core?"
        )
    return int(answer)


# ----------------------------------------------------------------------
# Claim 5.16 / Corollary 5.17: from simple queries to general queries
# ----------------------------------------------------------------------
def simple_query_of(query: ConjunctiveQuery
                    ) -> Tuple[ConjunctiveQuery, Dict[Atom, str]]:
    """``simple(Q)``: rename atoms apart so every symbol occurs once.

    Returns the simple query and the atom-to-fresh-symbol mapping.
    """
    renaming: Dict[Atom, str] = {}
    fresh_atoms = []
    for index, atom in enumerate(query.atoms_sorted()):
        fresh = f"__simple_{index}_{atom.relation}"
        renaming[atom] = fresh
        fresh_atoms.append(atom.rename_relation(fresh))
    simple = ConjunctiveQuery(
        frozenset(fresh_atoms), query.free_variables,
        name=f"simple({query.name})",
    )
    return simple, renaming


def _paired_database_for_simple(hat_query: ConjunctiveQuery,
                                renaming: Dict[Atom, str],
                                simple_db: Database) -> Database:
    """``Bhat`` of Claim 5.16 over the domain ``vars(Qs) x B``."""
    domain = sorted(simple_db.active_domain(), key=repr)
    rows_by_symbol: Dict[str, set] = {}
    arities: Dict[str, int] = {}
    for atom in hat_query.atoms_sorted():
        arities[atom.relation] = atom.arity
        rows_by_symbol.setdefault(atom.relation, set())
        source = simple_db.get(renaming[atom])
        if source is None:
            continue
        pattern: Tuple[Variable, ...] = atom.terms
        for row in source:
            rows_by_symbol[atom.relation].add(tuple(
                (pattern[i].name, row[i]) for i in range(len(row))
            ))
    relations = [
        Relation(symbol, arities[symbol], rows_by_symbol[symbol])
        for symbol in rows_by_symbol
    ]
    for variable in sorted(hat_query.variables, key=lambda v: v.name):
        relations.append(Relation(
            color_symbol(variable), 1,
            {((variable.name, b),) for b in domain},
        ))
    return Database(relations)


def count_simple_via_oracle(query: ConjunctiveQuery, simple_db: Database,
                            oracle: CountOracle = count_brute_force) -> int:
    """Corollary 5.17 executed: count the answers of ``simple(Qhat)`` on
    *simple_db* using only a count oracle for *query*.

    ``Qhat`` is the uncolored core of ``color(query)`` — logically
    equivalent to *query* (Theorem 5.14), so the oracle transfers.  The
    pipeline is Claim 5.16's structure construction followed by the
    Lemma 5.10 interpolation.  The matching instance builder is
    :func:`simple_instance_for`.
    """
    _require_constant_free(query)
    colored = colored_core(query)
    hat_query = uncolor(colored, name=f"hat({query.name})")
    _simple, renaming = simple_query_of(hat_query)
    paired_db = _paired_database_for_simple(hat_query, renaming, simple_db)

    def hat_oracle(q: ConjunctiveQuery, d: Database) -> int:
        return oracle(q, d)

    return count_fullcolor_via_oracle(hat_query, paired_db, hat_oracle)


def simple_instance_for(query: ConjunctiveQuery
                        ) -> Tuple[ConjunctiveQuery, Dict[Atom, str]]:
    """The simple query whose counts :func:`count_simple_via_oracle`
    computes: ``simple(Qhat)`` for ``Qhat`` the uncolored colored-core."""
    colored = colored_core(query)
    hat_query = uncolor(colored, name=f"hat({query.name})")
    return simple_query_of(hat_query)
