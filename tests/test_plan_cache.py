"""Property tests for the shape-keyed plan cache.

Three properties carry the whole design:

* the canonical fingerprint is **isomorphism-stable**: any bijective
  renaming of variables and relation symbols preserves it;
* structurally different queries get **different** fingerprints (no
  collisions on a diverse corpus — free-variable choice, constants,
  repeated symbols and repeated variables all count as shape);
* the cache is **safe under concurrent access**: a thread pool
  hammering one cache with interleaved shapes stays consistent.
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.counting.brute_force import count_brute_force
from repro.counting.engine import count_answers
from repro.counting.plan_cache import PlanCache
from repro.db import Database
from repro.query import parse_query
from repro.query.canonical import (
    canonical_form,
    query_fingerprint,
    random_renaming,
    rename_query,
)
from repro.workloads.random_instances import random_instance, random_query


class TestFingerprintStability:
    def test_variable_renaming_preserves_fingerprint(self):
        for seed in range(20):
            query = random_query(6, 5, seed=seed, n_symbols=3)
            fingerprint = query_fingerprint(query)
            for renaming_seed in range(3):
                renamed = random_renaming(query, seed=renaming_seed)
                assert query_fingerprint(renamed) == fingerprint

    def test_symbol_renaming_preserves_fingerprint(self):
        for seed in range(20):
            query = random_query(6, 5, seed=seed, n_symbols=3)
            fingerprint = query_fingerprint(query)
            for renaming_seed in range(3):
                renamed = random_renaming(query, seed=renaming_seed,
                                          rename_symbols=True)
                assert query_fingerprint(renamed) == fingerprint

    def test_symmetric_queries_are_stable(self):
        triangle = parse_query("ans(A) :- e(A, B), e(B, C), e(C, A)")
        fingerprint = query_fingerprint(triangle)
        for seed in range(10):
            renamed = random_renaming(triangle, seed=seed,
                                      rename_symbols=True)
            assert query_fingerprint(renamed) == fingerprint

    def test_canonical_form_is_a_true_renaming(self):
        """The canonical query must be the image of the original under the
        returned maps — same atom count, free arity, answer count."""
        query, database = random_instance(seed=11)
        form = canonical_form(query)
        assert len(form.query.atoms) == len(query.atoms)
        assert len(form.query.free_variables) == len(query.free_variables)
        image = rename_query(query, form.variable_map, form.symbol_map)
        assert image.atoms == form.query.atoms
        assert image.free_variables == form.query.free_variables


class TestFingerprintCollisions:
    def test_distinct_shapes_never_collide(self):
        shapes = [
            "ans(A) :- r(A, B)",
            "ans(A, B) :- r(A, B)",          # free set matters
            "ans() :- r(A, B)",
            "ans(A) :- r(B, A)",              # free position matters
            "ans(A) :- r(A, A)",              # repeated variable
            "ans(A) :- r(A, B), s(B, C)",
            "ans(A) :- r(A, B), r(B, C)",     # repeated symbol
            "ans(A) :- e(A, B), e(B, C), e(C, A)",
            "ans(A) :- e(A, B), e(B, C), e(C, D), e(D, A)",
            "ans(A) :- r(A, B), s(B, 3)",     # constants count
            "ans(A) :- r(A, B), s(B, 4)",
            "ans(A) :- r(A, B), s(B, 'x')",
            "ans(A, C) :- r(A, B), s(B, C), t(B, D)",
        ]
        fingerprints = [query_fingerprint(parse_query(s)) for s in shapes]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_random_corpus_collisions_only_for_isomorphic_pairs(self):
        """On random queries, equal fingerprints must mean the canonical
        queries are literally identical (the definition of same shape)."""
        by_fingerprint = {}
        for seed in range(40):
            query = random_query(5, 4, seed=seed, n_symbols=3)
            form = canonical_form(query)
            previous = by_fingerprint.setdefault(form.fingerprint,
                                                 form.query)
            assert previous.atoms == form.query.atoms
            assert previous.free_variables == form.query.free_variables


class TestPlanCacheBehavior:
    def _renamed_pair(self, query, database, seed):
        """A consistently renamed (query, database) pair: same shape,
        different variable and symbol names."""
        symbols = sorted(query.relation_symbols)
        symbol_map = {s: f"ren{seed}_{s}" for s in symbols}
        renamed_query = random_renaming(query, seed=seed)
        renamed_query = rename_query(renamed_query, symbol_map=symbol_map)
        renamed_db = Database(
            database[s].renamed(symbol_map[s]) for s in symbols
        )
        return renamed_query, renamed_db

    def test_renamed_shape_hits_the_cache(self):
        query, database = random_instance(seed=5)
        cache = PlanCache()
        baseline = count_answers(query, database, plan_cache=cache)
        cold = cache.stats()
        assert cold["misses"] > 0 and cold["hits"] == 0
        for seed in range(3):
            renamed_query, renamed_db = self._renamed_pair(
                query, database, seed
            )
            result = count_answers(renamed_query, renamed_db,
                                   plan_cache=cache)
            assert result.count == baseline.count
            assert result.strategy == baseline.strategy
        warm = cache.stats()
        assert warm["hits"] > 0
        # No new plans were computed for the renamed copies.
        assert warm["misses"] == cold["misses"]

    def test_different_shapes_do_not_share_plans(self):
        cache = PlanCache()
        path = parse_query("ans(A, C) :- r(A, B), s(B, C)")
        triangle = parse_query("ans(A) :- e(A, B), e(B, C), e(C, A)")
        db_path = Database.from_dict({"r": [(1, 2)], "s": [(2, 3)]})
        db_triangle = Database.from_dict({
            "e": [(1, 2), (2, 3), (3, 1)],
        })
        count_answers(path, db_path, plan_cache=cache)
        misses_after_first = cache.stats()["misses"]
        count_answers(triangle, db_triangle, plan_cache=cache)
        assert cache.stats()["misses"] > misses_after_first

    def test_cache_capacity_is_bounded(self):
        cache = PlanCache(plan_capacity=4, canonical_capacity=4)
        for length in range(2, 9):
            atoms = ", ".join(
                f"r{i}(V{i}, V{i + 1})" for i in range(length)
            )
            query = parse_query(f"ans(V0) :- {atoms}")
            database = Database.from_dict({
                f"r{i}": [(1, 1)] for i in range(length)
            })
            count_answers(query, database, plan_cache=cache)
        stats = cache.stats()
        assert stats["plans"] <= 4
        assert stats["canonical_forms"] <= 4

    def test_concurrent_hammering_is_safe(self):
        """Many threads, few shapes, one cache: every result must equal
        the sequential answer and the cache must stay consistent."""
        rng = random.Random(99)
        instances = [
            random_instance(n_variables=4, n_atoms=3, domain_size=4,
                            tuples_per_relation=10, seed=seed)
            for seed in range(4)
        ]
        expected = [count_brute_force(q, d) for q, d in instances]
        cache = PlanCache()

        tasks = []
        for _ in range(60):
            index = rng.randrange(len(instances))
            query, database = instances[index]
            variant = random_renaming(query, seed=rng.randrange(2 ** 30))
            tasks.append((index, variant, database))

        def work(task):
            index, query, database = task
            return index, count_answers(query, database,
                                        plan_cache=cache).count

        with ThreadPoolExecutor(max_workers=8) as pool:
            for index, count in pool.map(work, tasks):
                assert count == expected[index]
        stats = cache.stats()
        assert stats["hits"] > 0
        assert stats["plans"] >= 1


class TestAutomorphismOrbitPruning:
    """Sibling branches in one automorphism orbit are pruned (ISSUE 4):
    symmetric queries stay far under the branch budget, and the pruned
    search still lands on renaming-stable fingerprints."""

    @staticmethod
    def _symmetric_star(k):
        return parse_query(
            "ans(A, " + ", ".join(f"B{i}" for i in range(k)) + ") :- "
            + ", ".join(f"r(A, B{i})" for i in range(k))
        )

    def test_symmetric_star_stays_under_the_branch_budget(self):
        from repro.query.canonical import (
            CANONICAL_BRANCH_BUDGET,
            last_search_stats,
        )

        query = self._symmetric_star(6)
        fingerprint = query_fingerprint(query)
        stats = last_search_stats()
        # 6 interchangeable branches: the unpruned search floods the
        # 256-ordering budget (6! = 720 consistent orderings); orbit
        # pruning must leave most of the budget untouched.
        assert stats["explored"] < CANONICAL_BRANCH_BUDGET // 2
        assert stats["pruned"] > 0
        assert stats["automorphisms"] > 0
        for seed in range(6):
            variant = random_renaming(query, seed=seed, rename_symbols=True)
            assert query_fingerprint(variant) == fingerprint

    def test_interchangeable_atom_pairs_prune_too(self):
        from repro.query.canonical import last_search_stats

        query = parse_query(
            "ans(A, B, C, D, E) :- e(A, B), e(B, C), e(C, D), e(D, E)"
        )
        fingerprint = query_fingerprint(query)
        path_stats = last_search_stats()
        assert path_stats["explored"] >= 1
        for seed in range(4):
            assert query_fingerprint(
                random_renaming(query, seed=seed)
            ) == fingerprint

    def test_asymmetric_queries_explore_one_ordering(self):
        from repro.query.canonical import last_search_stats

        query_fingerprint(parse_query("ans(A, C) :- r(A, B), s(B, C)"))
        stats = last_search_stats()
        assert stats["explored"] == 1
        assert stats["pruned"] == 0

    def test_pruned_fingerprints_still_separate_shapes(self):
        # Stars of different fan-out must not collide after pruning.
        fingerprints = {
            query_fingerprint(self._symmetric_star(k)) for k in range(2, 7)
        }
        assert len(fingerprints) == 5
