"""Plan and maintainer-state serialization: verifiable byte blobs.

Every engine plan — the acyclicity witness, a
:class:`~repro.decomposition.sharp.SharpDecomposition`, a
:class:`~repro.decomposition.hypertree.Hypertree`, a
:class:`~repro.decomposition.hybrid.HybridDecomposition`, a
:class:`~repro.counting.compile.CompiledProgram` (a lowered, data-only
execution plan — step lists and permutations, never pickled code), or
``None`` for a memoized *failed* search — is a tree of frozen dataclasses,
queries,
atoms and join trees with no live caches attached, so the stdlib pickle
round-trips them faithfully (the process-pool service already ships the
same objects across workers).  What pickle does *not* give us is safety
against a corrupted or stale spill file, so the persistent plan cache
never stores a naked pickle: :func:`serialize_plan` wraps the payload in
an envelope carrying a format version and a content checksum, and
:func:`deserialize_plan` refuses anything whose envelope does not verify
— the caller then silently recomputes instead of adopting a wrong plan.

The same envelope discipline covers **maintainer checkpoints**: a
:class:`~repro.dynamic.maintainer.MaintainerPool` spilling a cold
materialized DP to disk wraps the pickled counter state with
:func:`serialize_maintainer_state` (its own magic header and format
version, so a plan blob can never be mistaken for a checkpoint and vice
versa), and :func:`deserialize_maintainer_state` refuses anything that
does not verify — the pool then rebuilds the DP from the live database
instead of adopting corrupt state.

Envelopes are byte-oriented; the persistent plan cache base64-embeds
them in its per-entry JSON files (see
:class:`~repro.counting.plan_cache.PersistentPlanCache`), while the
maintainer pool writes them to checkpoint files directly.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Tuple

from ..exceptions import ReproError

#: Bump when the plan object graph changes incompatibly; old spill files
#: are then rejected (and rebuilt) instead of deserialized into garbage.
PLAN_FORMAT_VERSION = 1

#: Format version of **compiled execution plans**
#: (:class:`~repro.counting.compile.CompiledProgram`).  Compiled
#: artifacts are data-only step lists riding the ordinary plan envelope
#: above (they are plan-cache values like any decomposition), so this
#: version is baked into their *cache key* instead of the envelope:
#: bumping it makes every stale artifact unreachable — no invalidation
#: pass needed — while same-version artifacts keep warm-starting worker
#: pools through the persistent tier.
COMPILED_FORMAT_VERSION = 1

#: Bump when the maintainer DP state changes incompatibly; stale
#: checkpoints are then rejected and the DP is rebuilt from the database.
#: Version 2: checkpoints may carry a
#: :class:`~repro.dynamic.reduced.ReducedMaintainer` (reduction-based
#: maintenance — provenance parts, witness counts, and the inner DP)
#: where version 1 only ever held an ``IncrementalCounter``; version-1
#: files are rejected on restore and the DP rebuilt from the database.
#: Version 3: ``ReducedMaintainer`` bag state switched from the fed-row
#: snapshot / dirty-bit layout to the delta-reducer layout (pending
#: membership flips plus projection-support multisets; the reducer's
#: support counters themselves are reseeded on first read after
#: restore) — version-2 envelopes would unpickle into the wrong slot
#: set, so they are rejected and the maintainer rebuilt.
MAINTAINER_FORMAT_VERSION = 3

#: Bump when the shard-handoff payload (a database snapshot shipped
#: between shard servers; see :mod:`repro.service.net.directory`)
#: changes incompatibly — a stale envelope is then rejected on restore
#: and the handoff aborts instead of adopting garbage state.
HANDOFF_FORMAT_VERSION = 1

_PLAN_MAGIC = b"repro-plan"
_MAINTAINER_MAGIC = b"repro-maint"
_HANDOFF_MAGIC = b"repro-handoff"


class PlanSerializationError(ReproError):
    """A serialized blob that cannot be produced or must not be trusted."""


def _serialize(payload_object: object, magic: bytes, version: int) -> bytes:
    """Encode *payload_object* as a self-verifying byte blob."""
    try:
        payload = pickle.dumps(payload_object,
                               protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:
        raise PlanSerializationError(
            f"payload of type {type(payload_object).__name__} "
            f"does not serialize: {error}"
        ) from error
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    header = b"%s:%d:%s:" % (magic, version, digest)
    return header + payload


def _split_envelope(blob: bytes, magic: bytes) -> Tuple[int, bytes, bytes]:
    """``(version, checksum, payload)`` of *blob*, or raise."""
    try:
        found_magic, version, digest, payload = blob.split(b":", 3)
    except ValueError:
        raise PlanSerializationError("blob envelope is malformed")
    if found_magic != magic:
        raise PlanSerializationError("blob has a foreign magic header")
    try:
        return int(version), digest, payload
    except ValueError:
        raise PlanSerializationError("blob version is not an integer")


def _deserialize(blob: bytes, magic: bytes, expected_version: int) -> object:
    """Decode a :func:`_serialize` blob, verifying the envelope.

    Raises :class:`PlanSerializationError` on a version mismatch, a
    checksum mismatch (bit rot, truncation, tampering), or an unpicklable
    payload — never returns a payload that did not verify end to end.
    """
    version, digest, payload = _split_envelope(blob, magic)
    if version != expected_version:
        raise PlanSerializationError(
            f"blob format {version} != current {expected_version}"
        )
    actual = hashlib.sha256(payload).hexdigest().encode("ascii")
    if actual != digest:
        raise PlanSerializationError("blob checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise PlanSerializationError(
            f"blob payload does not unpickle: {error}"
        ) from error


# ----------------------------------------------------------------------
# Engine plans (the persistent plan cache's blobs)
# ----------------------------------------------------------------------
def serialize_plan(plan: object) -> bytes:
    """Encode *plan* as a self-verifying byte blob.

    Raises :class:`PlanSerializationError` when the plan does not pickle
    (e.g. a user-registered strategy cached a witness holding a live
    resource); callers treat that plan as memory-only.
    """
    return _serialize(plan, _PLAN_MAGIC, PLAN_FORMAT_VERSION)


def deserialize_plan(blob: bytes) -> object:
    """Decode a :func:`serialize_plan` blob, verifying the envelope."""
    return _deserialize(blob, _PLAN_MAGIC, PLAN_FORMAT_VERSION)


# ----------------------------------------------------------------------
# Maintainer checkpoints (the maintainer pool's spill files)
# ----------------------------------------------------------------------
def serialize_maintainer_state(state: object) -> bytes:
    """Encode a maintainer checkpoint as a self-verifying byte blob.

    *state* is whatever the pool chooses to checkpoint (the pickled
    counter plus its identifying key material); the envelope only
    guarantees that what comes back out is byte-for-byte what went in.
    """
    return _serialize(state, _MAINTAINER_MAGIC, MAINTAINER_FORMAT_VERSION)


def deserialize_maintainer_state(blob: bytes) -> object:
    """Decode a :func:`serialize_maintainer_state` blob, verifying the
    envelope; raises :class:`PlanSerializationError` when it does not
    verify — the pool then rebuilds from the live database."""
    return _deserialize(blob, _MAINTAINER_MAGIC, MAINTAINER_FORMAT_VERSION)


# ----------------------------------------------------------------------
# Shard-handoff snapshots (the networked fabric's shipped databases)
# ----------------------------------------------------------------------
def serialize_handoff_state(state: object) -> bytes:
    """Encode a shard-handoff snapshot as a self-verifying byte blob.

    *state* is the source shard's checkpoint payload (the database name
    plus its relation rows; see
    :meth:`repro.service.shard.SessionShard.checkpoint_database`).  The
    envelope is what makes shipping it over a faulty network safe: a
    truncated or corrupted blob fails verification on the receiving
    shard instead of being attached as a wrong database.
    """
    return _serialize(state, _HANDOFF_MAGIC, HANDOFF_FORMAT_VERSION)


def deserialize_handoff_state(blob: bytes) -> object:
    """Decode a :func:`serialize_handoff_state` blob, verifying the
    envelope; raises :class:`PlanSerializationError` when it does not
    verify — the handoff then aborts instead of restoring garbage."""
    return _deserialize(blob, _HANDOFF_MAGIC, HANDOFF_FORMAT_VERSION)
