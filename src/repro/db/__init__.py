"""In-memory relational engine: relations, databases, substitution algebra."""

from .algebra import SubstitutionSet, join_all
from .database import Database
from .io import (
    database_from_dict,
    database_to_dict,
    dump_database,
    load_database,
    query_to_text,
)
from .generators import (
    correlated_database,
    functional_database,
    random_database,
    single_relation,
)
from .relation import Relation, Row

__all__ = [
    "SubstitutionSet",
    "join_all",
    "Database",
    "Relation",
    "Row",
    "database_from_dict",
    "database_to_dict",
    "dump_database",
    "load_database",
    "query_to_text",
    "correlated_database",
    "functional_database",
    "random_database",
    "single_relation",
]
