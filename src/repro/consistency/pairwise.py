"""Pairwise consistency (paper, proofs of Thm. 3.7 and Lemma 4.3; [GS17b]).

Enforcing pairwise consistency over a set of relations means repeatedly
semijoin-reducing every relation against every other until a fixpoint: no
relation contains a tuple without a matching partner in any other relation.
For acyclic instances pairwise consistency implies global consistency
(Beeri–Fagin–Maier–Yannakakis), which is what the counting algorithm of
Theorem 3.7 exploits.

Two flavours are provided:

* :func:`pairwise_consistency` — the general fixpoint over an arbitrary
  collection of substitution sets (used by Lemma 4.3's core computation);
* :func:`full_reducer` — the classical two-pass semijoin program along a
  join tree, which achieves global consistency for acyclic instances at a
  fraction of the cost.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..db.algebra import SubstitutionSet
from ..hypergraph.acyclicity import JoinTree


def pairwise_consistency(relations: Dict[str, SubstitutionSet]
                         ) -> Dict[str, SubstitutionSet]:
    """Semijoin-reduce all pairs to a fixpoint; returns a new mapping.

    A worklist algorithm: when a relation shrinks, every relation sharing a
    variable with it is re-examined.  Relations with disjoint schemas only
    interact through emptiness (an empty relation empties everything), which
    is handled by the final sweep.
    """
    current = dict(relations)
    names = sorted(current)
    sharers: Dict[str, List[str]] = {name: [] for name in names}
    for i, a in enumerate(names):
        vars_a = current[a].variable_set()
        for b in names[i + 1:]:
            if vars_a & current[b].variable_set():
                sharers[a].append(b)
                sharers[b].append(a)
    worklist = list(names)
    while worklist:
        name = worklist.pop()
        mine = current[name]
        for other_name in sharers[name]:
            reduced = current[other_name].semijoin(mine)
            if reduced is not current[other_name]:
                current[other_name] = reduced
                if other_name not in worklist:
                    worklist.append(other_name)
    if any(len(rel) == 0 for rel in current.values()):
        current = {
            name: SubstitutionSet.empty(rel.schema)
            for name, rel in current.items()
        }
    return current


def is_pairwise_consistent(relations: Dict[str, SubstitutionSet]) -> bool:
    """Check (without modifying) that every pair is semijoin-reduced."""
    items = sorted(relations.items())
    for i, (_, a) in enumerate(items):
        for _, b in items[i + 1:]:
            if len(a.semijoin(b)) != len(a) or len(b.semijoin(a)) != len(b):
                return False
    return True


def full_reducer(bags: Sequence[SubstitutionSet], tree: JoinTree
                 ) -> List[SubstitutionSet]:
    """Two-pass semijoin reduction along a join tree.

    ``bags[i]`` is the relation at join-tree vertex ``i``.  After the
    bottom-up pass followed by the top-down pass, the bag relations are
    globally consistent: every remaining tuple participates in at least one
    tuple of the full join.  Disconnected join trees (forests) are handled
    per tree; cross-tree emptiness is then propagated (an empty component
    makes the whole join empty).
    """
    if len(bags) != len(tree.bags):
        raise ValueError("bag count does not match join tree size")
    reduced = list(bags)
    order = tree.rooted_orders()
    # Bottom-up: each vertex absorbs all of its children in one scan
    # (children precede their parent in the order, so they are final).
    for vertex, _parent, children in order:
        if children:
            reduced[vertex] = reduced[vertex].semijoin_all(
                [reduced[child] for child in children]
            )
    # Top-down: children absorb parents' reductions (reverse order).  The
    # parent instance is final here, so its cached key sets are shared by
    # every child edge probing the same variable subset.
    for vertex, parent, _children in reversed(order):
        if parent is not None:
            reduced[vertex] = reduced[vertex].semijoin(reduced[parent])
    if any(len(bag) == 0 for bag in reduced):
        reduced = [SubstitutionSet.empty(bag.schema) for bag in reduced]
    return reduced
