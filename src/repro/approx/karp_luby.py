"""The Karp–Luby union estimator for UCQ answer counting.

Inclusion–exclusion (:func:`repro.ucq.counting.count_union`) is exact but
has ``2^r - 1`` terms.  Karp–Luby estimates ``|A_1 ∪ ... ∪ A_r|`` with only
``r`` exact per-disjunct counts plus sampling:

1. compute ``c_i = |A_i|`` exactly and let ``Z = Σ c_i`` (an overcount:
   answers in several disjuncts are counted once per disjunct);
2. repeat: pick disjunct ``i`` with probability ``c_i / Z``, draw a uniform
   answer ``a`` of ``Q_i`` (the exact sampler of
   :mod:`repro.approx.sampler`), and record a *hit* iff ``i`` is the
   **first** disjunct whose answer set contains ``a``;
3. the hit rate estimates ``|∪ A_i| / Z`` — each union element is counted
   by exactly one (disjunct, answer) pair, its first containing disjunct.

Per-sample membership tests are Boolean CQs (polynomial).  The estimator is
unbiased and, because the hit probability is at least ``1/r``, a sample
size of ``O(r log(1/δ) / ε²)`` gives an ``(ε, δ)``-approximation — the
FPRAS recipe of the approximate-counting line of work the paper points at.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..db.database import Database
from ..exceptions import QueryError
from ..homomorphism.solver import has_homomorphism
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable
from ..ucq.union_query import UnionQuery
from .sampler import AnswerSampler


@dataclass(frozen=True)
class KarpLubyEstimate:
    """Outcome of a Karp–Luby run.

    When ``exact`` is true the run resolved the count *exactly* (the
    zero-overcount shortcut: every disjunct is empty, so the union is
    empty).  Then ``estimate`` is the true count, ``half_width`` is
    0.0, and the stated ``confidence`` is vacuous — the result holds
    with certainty despite ``samples == 0``.  Consumers forwarding
    ``(estimate, epsilon, delta)`` guarantees can report ``delta=0``
    for exact results.
    """

    estimate: float
    samples: int
    hits: int
    per_disjunct_counts: Tuple[int, ...]
    overcount: int
    confidence: float
    half_width: float
    exact: bool = False

    @property
    def interval(self) -> Tuple[float, float]:
        """The (clamped) confidence interval on the union count."""
        return (
            max(0.0, self.estimate - self.half_width),
            min(float(self.overcount), self.estimate + self.half_width),
        )

    def covers(self, true_count: int) -> bool:
        """Whether the interval contains *true_count*."""
        low, high = self.interval
        return low <= true_count <= high


def _membership(query: ConjunctiveQuery, database: Database,
                answer: Dict[Variable, Hashable]) -> bool:
    """Is *answer* (an assignment of the free variables) in ``Q(D)``?"""
    return has_homomorphism(query, database, fixed=answer)


def karp_luby_union_count(union: UnionQuery, database: Database,
                          samples: int = 1000, confidence: float = 0.95,
                          max_width: int = 3,
                          seed: Optional[int] = None) -> KarpLubyEstimate:
    """Estimate the answer count of *union* on *database*.

    Each disjunct must admit a #-hypertree decomposition of width at most
    *max_width* (needed by the exact per-disjunct counter/sampler); raises
    :class:`~repro.exceptions.DecompositionNotFoundError` otherwise.
    """
    if samples <= 0:
        raise QueryError("samples must be positive")
    rng = random.Random(seed)
    samplers: List[AnswerSampler] = [
        AnswerSampler.for_query(disjunct, database, max_width, rng)
        for disjunct in union.disjuncts
    ]
    counts = tuple(len(sampler) for sampler in samplers)
    overcount = sum(counts)
    if overcount == 0:
        # Every disjunct is empty, so the union count is exactly 0 —
        # labeled exact rather than as a zero-sample "approximation".
        return KarpLubyEstimate(
            estimate=0.0, samples=0, hits=0, per_disjunct_counts=counts,
            overcount=0, confidence=confidence, half_width=0.0,
            exact=True,
        )
    cumulative: List[int] = []
    running = 0
    for count in counts:
        running += count
        cumulative.append(running)
    hits = 0
    for _ in range(samples):
        target = rng.randrange(overcount)
        disjunct_index = next(
            i for i, bound in enumerate(cumulative) if target < bound
        )
        answer = samplers[disjunct_index].sample()
        first = next(
            i for i, disjunct in enumerate(union.disjuncts)
            if _membership(disjunct, database, answer)
        )
        if first == disjunct_index:
            hits += 1
    estimate = hits / samples * overcount
    epsilon = math.sqrt(math.log(2.0 / (1.0 - confidence)) / (2.0 * samples))
    return KarpLubyEstimate(
        estimate=estimate,
        samples=samples,
        hits=hits,
        per_disjunct_counts=counts,
        overcount=overcount,
        confidence=confidence,
        half_width=epsilon * overcount,
    )
