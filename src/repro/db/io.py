"""Serialization: JSON databases and Datalog query text, round-trippable.

The CLI, the examples and downstream users need a way to move instances in
and out of the library.  Two humble formats cover it:

* databases <-> JSON objects ``{relation: [[...row...], ...]}`` — the same
  shape the CLI consumes.  Arities are stored explicitly so that empty
  relations survive the round trip (a plain row list cannot express them);
* queries <-> the Datalog dialect of :mod:`repro.query.parser`.

Only JSON-representable constants round-trip (strings, ints, floats,
bools, None, and nested lists thereof — lists come back as tuples so rows
stay hashable).
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..exceptions import DatabaseError
from ..query.atom import Atom
from ..query.query import ConjunctiveQuery
from ..query.terms import Constant, Variable
from .columnar import make_relation
from .database import Database

#: Key carrying explicit arities in the JSON object (optional on input).
ARITY_KEY = "__arities__"


def database_to_dict(database: Database) -> Dict[str, object]:
    """A JSON-ready dict for *database*, including explicit arities."""
    payload: Dict[str, object] = {
        name: [list(row) for row in sorted(database[name].rows, key=repr)]
        for name in sorted(database)
    }
    payload[ARITY_KEY] = {
        name: database[name].arity for name in sorted(database)
    }
    return payload


def database_from_dict(payload: Dict[str, object],
                       backend: str | None = None) -> Database:
    """Inverse of :func:`database_to_dict`; tolerates a missing arity map.

    Relations are built under *backend* (default: the process-wide
    :func:`~repro.db.columnar.default_backend`, i.e. ``$REPRO_BACKEND``).
    Every service-side database rebuild — session attach, shard handoff,
    job specs — funnels through here, so a shard server's environment
    decides the backend its resident databases run on.
    """
    arities = payload.get(ARITY_KEY, {})
    relations: List = []
    for name, rows in payload.items():
        if name == ARITY_KEY:
            continue
        rows = [tuple(_freeze(value) for value in row) for row in rows]
        if name in arities:
            arity = arities[name]
        elif rows:
            arity = len(rows[0])
        else:
            raise DatabaseError(
                f"empty relation {name!r} needs an explicit arity under "
                f"{ARITY_KEY!r}"
            )
        relations.append(make_relation(name, arity, rows, backend=backend))
    return Database(relations)


def dump_database(database: Database, path: str) -> None:
    """Write *database* to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(database_to_dict(database), handle, indent=1)


def load_database(path: str) -> Database:
    """Read a database from a JSON file (the CLI's format)."""
    with open(path) as handle:
        return database_from_dict(json.load(handle))


def _freeze(value):
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def query_to_text(query: ConjunctiveQuery) -> str:
    """Render *query* in the parser's Datalog dialect.

    ``parse_query(query_to_text(q))`` equals ``q`` whenever the query's
    relation symbols and variable names are parser-compatible identifiers
    and its constants are strings or integers.
    """
    head_vars = ", ".join(
        v.name for v in sorted(query.free_variables, key=lambda v: v.name)
    )
    body = ", ".join(_atom_text(atom) for atom in query.atoms_sorted())
    return f"{query.name}({head_vars}) :- {body}"


def _atom_text(atom: Atom) -> str:
    terms = ", ".join(_term_text(term) for term in atom.terms)
    return f"{atom.relation}({terms})"


def _term_text(term) -> str:
    if isinstance(term, Variable):
        return term.name
    value = term.value
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    return f"'{value}'"
