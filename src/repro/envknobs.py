"""Shared parsing of the ``REPRO_*`` environment knobs.

Every environment knob in the repository goes through these helpers so a
malformed value is **never silently swallowed**: an unparseable setting
(``REPRO_SESSION_SHARDS=two``) emits one :class:`RuntimeWarning` per
distinct ``(name, value)`` pair and falls back to the knob's default —
visible, deterministic, and impossible to mistake for the knob having
taken effect.

Unset and empty values mean "use the default" and never warn (an empty
string is how the CI matrix expresses "leg does not set this knob").
The knobs currently wired through here:

* ``REPRO_SESSION_SHARDS`` — :func:`repro.service.default_shards`
* ``REPRO_SERVICE_WORKERS`` — :func:`repro.service.default_workers`
* ``REPRO_MAINTAINER_BUDGET_MB`` —
  :func:`repro.dynamic.maintainer.maintainer_budget_from_env`
* ``REPRO_COMPILED`` — :func:`repro.counting.compile.compiled_enabled`
* ``REPRO_COST_UNITS_PER_MS`` —
  :func:`repro.counting.engine.cost_units_per_ms` (deadline calibration)
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Optional, Set, Tuple

#: ``(name, raw value)`` pairs already warned about — one warning per
#: distinct misconfiguration per process, not one per read (knobs like
#: ``REPRO_COMPILED`` are consulted on every count).
_WARNED: Set[Tuple[str, str]] = set()
_WARNED_LOCK = threading.Lock()

#: Accepted spellings for boolean knobs (case-insensitive).
_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"0", "false", "no", "off"})


def _warn_once(name: str, raw: str, expected: str) -> None:
    with _WARNED_LOCK:
        key = (name, raw)
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(
        f"ignoring unparseable environment knob {name}={raw!r} "
        f"(expected {expected}); using the default instead",
        RuntimeWarning,
        stacklevel=4,
    )


def reset_env_warnings() -> None:
    """Forget which misconfigurations were warned about (tests only)."""
    with _WARNED_LOCK:
        _WARNED.clear()


def env_int(name: str, default: Optional[int] = None) -> Optional[int]:
    """``$name`` as an ``int``, or *default*.

    Unset/empty values return *default* silently; an unparseable value
    warns once (per distinct value) and returns *default*.
    """
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        _warn_once(name, raw, "an integer")
        return default


def env_float(name: str, default: Optional[float] = None) -> Optional[float]:
    """``$name`` as a ``float``, or *default* (same contract as
    :func:`env_int`)."""
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        _warn_once(name, raw, "a number")
        return default


def env_flag(name: str, default: bool = True) -> bool:
    """``$name`` as a boolean, or *default*.

    Accepts ``1/true/yes/on`` and ``0/false/no/off`` (case-insensitive);
    anything else warns once and returns *default*.
    """
    raw = os.environ.get(name)
    if not raw:
        return default
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    _warn_once(name, raw, "one of 1/0/true/false/yes/no/on/off")
    return default
