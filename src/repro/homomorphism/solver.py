"""Homomorphism search.

A homomorphism from a query ``Q`` to a database ``D`` (paper, Section 2) is a
mapping from ``vars(Q)`` to constants such that every atom's image is a tuple
of the corresponding relation; constants map to themselves.  Queries are also
relational structures, so homomorphisms *between queries* — the basis of core
computation — are obtained by viewing the target query as a database via
:func:`query_as_database`.

The solver is a backtracking search with most-constrained-variable ordering
and per-atom forward checking.  It is exponential only in the query size,
matching the paper's parameterization (queries small, databases large).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Mapping, Optional, Set, Tuple

from ..db.database import Database
from ..db.relation import Relation
from ..query.query import ConjunctiveQuery
from ..query.terms import Constant, Variable


def query_as_database(query: ConjunctiveQuery) -> Database:
    """The query viewed as a database ``D_Q`` (proof of Lemma 4.3).

    Variables stay as themselves (they are hashable values); constants are
    unwrapped to their raw value, so that a :class:`Constant` term in a
    source atom matches exactly itself in the target — homomorphisms fix
    constants for free.
    """
    rows_by_symbol: Dict[str, List[tuple]] = {}
    arities: Dict[str, int] = {}
    for atom in query.atoms:
        row = tuple(
            t.value if isinstance(t, Constant) else t for t in atom.terms
        )
        rows_by_symbol.setdefault(atom.relation, []).append(row)
        arities[atom.relation] = atom.arity
    return Database(
        Relation(symbol, arities[symbol], rows)
        for symbol, rows in rows_by_symbol.items()
    )


class _SearchSpace:
    """Shared pre-processing for one (query, database) pair."""

    def __init__(self, query: ConjunctiveQuery, database: Database):
        self.query = query
        self.database = database
        self.atoms = query.atoms_sorted()
        self.tuples: Dict[str, Tuple[tuple, ...]] = {}
        for atom in self.atoms:
            if atom.relation not in self.tuples:
                relation = database.get(atom.relation)
                self.tuples[atom.relation] = (
                    tuple(relation.rows) if relation is not None else ()
                )

    def initial_domains(self, fixed: Mapping[Variable, Hashable]
                        ) -> Optional[Dict[Variable, Set]]:
        """Per-variable candidate sets, or ``None`` if some variable has none."""
        domains: Dict[Variable, Set] = {}
        for atom in self.atoms:
            rows = self.tuples[atom.relation]
            for position, term in enumerate(atom.terms):
                if not isinstance(term, Variable):
                    continue
                values = {row[position] for row in rows
                          if self._row_matches_pattern(row, atom)}
                if term in domains:
                    domains[term] &= values
                else:
                    domains[term] = set(values)
        for variable, value in fixed.items():
            if variable in domains:
                if value not in domains[variable]:
                    return None
                domains[variable] = {value}
        if any(not d for d in domains.values()):
            return None
        return domains

    def _row_matches_pattern(self, row: tuple, atom) -> bool:
        """Check constants and repeated-variable equalities within one atom."""
        first_position: Dict[Variable, int] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                if row[position] != term.value:
                    return False
            else:
                if term in first_position:
                    if row[position] != row[first_position[term]]:
                        return False
                else:
                    first_position[term] = position
        return True

    def atom_consistent(self, atom, assignment: Mapping[Variable, Hashable]
                        ) -> bool:
        """Is there a target tuple compatible with the partial assignment?"""
        rows = self.tuples[atom.relation]
        for row in rows:
            if self._row_extends(row, atom, assignment):
                return True
        return False

    def _row_extends(self, row: tuple, atom,
                     assignment: Mapping[Variable, Hashable]) -> bool:
        first_position: Dict[Variable, int] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                if row[position] != term.value:
                    return False
            else:
                if term in assignment and row[position] != assignment[term]:
                    return False
                if term in first_position:
                    if row[position] != row[first_position[term]]:
                        return False
                else:
                    first_position[term] = position
        return True


def iter_homomorphisms(query: ConjunctiveQuery, database: Database,
                       fixed: Optional[Mapping[Variable, Hashable]] = None
                       ) -> Iterator[Dict[Variable, Hashable]]:
    """Yield every homomorphism from *query* to *database*.

    *fixed* pre-binds some variables (used for existential-extension checks
    and for the identity-on-free-variables homomorphisms of Section 5.3).
    """
    fixed = dict(fixed or {})
    space = _SearchSpace(query, database)
    domains = space.initial_domains(fixed)
    if domains is None:
        return
    variables = sorted(domains, key=lambda v: (len(domains[v]), v.name))
    atoms_by_var: Dict[Variable, List] = {v: [] for v in variables}
    for atom in space.atoms:
        for variable in atom.variables:
            atoms_by_var[variable].append(atom)

    assignment: Dict[Variable, Hashable] = dict(fixed)

    def backtrack(index: int) -> Iterator[Dict[Variable, Hashable]]:
        if index == len(variables):
            yield dict(assignment)
            return
        variable = variables[index]
        if variable in fixed:
            yield from backtrack(index + 1)
            return
        for value in domains[variable]:
            assignment[variable] = value
            if all(space.atom_consistent(atom, assignment)
                   for atom in atoms_by_var[variable]):
                yield from backtrack(index + 1)
            del assignment[variable]

    yield from backtrack(0)


def find_homomorphism(query: ConjunctiveQuery, database: Database,
                      fixed: Optional[Mapping[Variable, Hashable]] = None
                      ) -> Optional[Dict[Variable, Hashable]]:
    """The first homomorphism found, or ``None``."""
    for hom in iter_homomorphisms(query, database, fixed):
        return hom
    return None


def has_homomorphism(query: ConjunctiveQuery, database: Database,
                     fixed: Optional[Mapping[Variable, Hashable]] = None
                     ) -> bool:
    """Existence test (the Boolean conjunctive query problem)."""
    return find_homomorphism(query, database, fixed) is not None


def has_query_homomorphism(source: ConjunctiveQuery, target: ConjunctiveQuery
                           ) -> bool:
    """Is there a homomorphism ``source -> target`` between query structures?"""
    return has_homomorphism(source, query_as_database(target))


def homomorphically_equivalent(first: ConjunctiveQuery,
                               second: ConjunctiveQuery) -> bool:
    """Mutual homomorphic equivalence (logical equivalence, Thm. 5.14)."""
    return (has_query_homomorphism(first, second)
            and has_query_homomorphism(second, first))
