"""Unit tests for hybrid counting (Theorems 6.6 and 6.7)."""

import pytest

from repro.counting.brute_force import count_brute_force
from repro.counting.hybrid import count_hybrid, count_with_hybrid_decomposition
from repro.db import Database
from repro.db.generators import functional_database
from repro.decomposition.hybrid import evaluate_pseudo_free
from repro.exceptions import DecompositionNotFoundError
from repro.query import parse_query
from repro.workloads import (
    d2_bar_database,
    q2_bar,
    q2_pseudo_free,
    random_instance,
)


class TestExample63Counting:
    def test_counts_match_brute_force(self):
        """The headline hybrid result: barQ^h_2 on barD^m_2 counted via the
        width-2 #1-GHD of Example 6.5."""
        for h in (1, 2):
            query, database = q2_bar(h), d2_bar_database(h)
            hybrid = evaluate_pseudo_free(query, database, 2,
                                          q2_pseudo_free(h))
            got = count_with_hybrid_decomposition(query, database, hybrid)
            assert got == count_brute_force(query, database) == 2 ** h

    def test_end_to_end_search_and_count(self):
        query, database = q2_bar(2), d2_bar_database(2)
        assert count_hybrid(query, database, width=2) == 4

    def test_given_decomposition_reused(self):
        query, database = q2_bar(1), d2_bar_database(1)
        hybrid = evaluate_pseudo_free(query, database, 2, q2_pseudo_free(1))
        assert count_hybrid(query, database, width=2, hybrid=hybrid) == 2


class TestHybridOnGeneralInstances:
    def test_functional_dependency_regime(self):
        """Keys make every existential variable degree-1: the hybrid method
        applies and is exact (the Example 1.5 scenario)."""
        query = parse_query("ans(A, C) :- r(A, B), s(B, C), t(C, D)")
        database = functional_database(query, 8, 20, key_width=1,
                                       degree=1, seed=4)
        assert count_hybrid(query, database, width=2) == \
            count_brute_force(query, database)

    def test_random_instances_match_brute_force(self):
        checked = 0
        for seed in range(14):
            query, database = random_instance(
                n_variables=5, n_atoms=4, seed=seed + 300,
            )
            try:
                got = count_hybrid(query, database, width=2)
            except DecompositionNotFoundError:
                continue
            assert got == count_brute_force(query, database), f"seed={seed+300}"
            checked += 1
        assert checked >= 7

    def test_unsatisfiable_counts_zero(self):
        query = parse_query("ans(A) :- r(A, B), s(B, C)")
        database = Database.from_dict({"r": [(1, 2)], "s": [(3, 4)]})
        assert count_hybrid(query, database, width=2) == 0

    def test_raises_when_budget_too_small(self):
        query, database = q2_bar(1), d2_bar_database(1)
        with pytest.raises(DecompositionNotFoundError):
            count_hybrid(query, database, width=1, max_degree=0.5)
