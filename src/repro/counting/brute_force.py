"""Brute-force counting baseline.

Materializes the full join of the query's atoms and projects onto the free
variables.  Exponential in general — this is exactly the "straightforward
approach" the paper's introduction warns about — but it is exact, simple,
and serves as the ground-truth oracle for every other algorithm in the test
suite and as the baseline in the benchmarks.
"""

from __future__ import annotations

from ..db.algebra import SubstitutionSet
from ..db.database import Database
from ..query.query import ConjunctiveQuery


def full_join(query: ConjunctiveQuery, database: Database) -> SubstitutionSet:
    """``Q(D)``: all satisfying substitutions over ``vars(Q)``.

    Atoms are joined smallest-relation-first with greedy connectivity (each
    step prefers an atom sharing variables with what has been joined so far)
    to keep intermediate results from degenerating into cross products.
    """
    pending = [
        SubstitutionSet.from_atom(atom, database[atom.relation])
        for atom in query.atoms_sorted()
    ]
    pending.sort(key=len)
    result = pending.pop(0)
    while pending:
        bound = result.variable_set()
        index = next(
            (i for i, part in enumerate(pending)
             if part.variable_set() & bound),
            0,
        )
        result = result.join(pending.pop(index))
    return result


def answers(query: ConjunctiveQuery, database: Database) -> SubstitutionSet:
    """``pi_free(Q)(Q(D))``: the set of answers of the query."""
    return full_join(query, database).project(query.free_variables)


def count_brute_force(query: ConjunctiveQuery, database: Database) -> int:
    """``count(Q, D)`` by full materialization (the baseline)."""
    return len(answers(query, database))
