"""Unit tests for homomorphism search."""

from repro.db import Database
from repro.homomorphism.solver import (
    find_homomorphism,
    has_homomorphism,
    has_query_homomorphism,
    homomorphically_equivalent,
    iter_homomorphisms,
    query_as_database,
)
from repro.query import Constant, Variable, parse_query

A, B, C = Variable("A"), Variable("B"), Variable("C")


class TestQueryToDatabase:
    def test_find_homomorphism(self, path_query, path_database):
        hom = find_homomorphism(path_query, path_database)
        assert hom is not None
        # verify the hom satisfies both atoms
        assert (hom[A], hom[B]) in path_database["r"]
        assert (hom[B], hom[C]) in path_database["s"]

    def test_iter_all_homomorphisms(self, path_query, path_database):
        homs = list(iter_homomorphisms(path_query, path_database))
        # r x s joined on B: (1,10)->5,6; (1,11)->5; (2,10)->5,6; (3,12)->7
        assert len(homs) == 6
        assert len({tuple(sorted(h.items())) for h in homs}) == 6

    def test_fixed_variables(self, path_query, path_database):
        homs = list(iter_homomorphisms(path_query, path_database, fixed={A: 3}))
        assert len(homs) == 1
        assert homs[0][C] == 7

    def test_fixed_infeasible_value(self, path_query, path_database):
        assert not has_homomorphism(path_query, path_database, fixed={A: 99})

    def test_no_homomorphism(self, path_query):
        db = Database.from_dict({"r": [(1, 2)], "s": [(3, 4)]})
        assert not has_homomorphism(path_query, db)

    def test_missing_relation_means_no_homomorphism(self, path_query):
        db = Database.from_dict({"r": [(1, 2)]})
        assert not has_homomorphism(path_query, db)

    def test_constants_must_match(self):
        q = parse_query("ans(A) :- r(A, 7)")
        assert has_homomorphism(q, Database.from_dict({"r": [(1, 7)]}))
        assert not has_homomorphism(q, Database.from_dict({"r": [(1, 8)]}))

    def test_repeated_variable_in_atom(self):
        q = parse_query("ans(A) :- r(A, A)")
        assert not has_homomorphism(q, Database.from_dict({"r": [(1, 2)]}))
        assert has_homomorphism(q, Database.from_dict({"r": [(1, 2), (3, 3)]}))


class TestQueryAsDatabase:
    def test_variables_stay_constants_unwrap(self):
        q = parse_query("ans(A) :- r(A, 7)")
        db = query_as_database(q)
        assert (A, 7) in db["r"]

    def test_atoms_with_same_symbol_grouped(self):
        q = parse_query("ans(A) :- r(A, B), r(B, C)")
        assert len(query_as_database(q)["r"]) == 2


class TestQueryToQuery:
    def test_cycle_maps_into_triangle_times(self):
        square = parse_query("ans() :- e(A, B), e(B, C), e(C, D), e(D, A)")
        triangle = parse_query("ans() :- e(A, B), e(B, C), e(C, A)")
        # odd cycle into even cycle: no; but square -> triangle exists? A 4-cycle
        # maps homomorphically onto any edge walked back and forth.
        edge = parse_query("ans() :- e(A, B), e(B, A)")
        assert has_query_homomorphism(square, edge)
        assert not has_query_homomorphism(triangle, edge)
        assert has_query_homomorphism(triangle, triangle)

    def test_path_into_shorter_path_fails(self):
        p2 = parse_query("ans() :- r(A, B), r(B, C)")
        p1 = parse_query("ans() :- r(A, B)")
        assert has_query_homomorphism(p1, p2)
        assert not has_query_homomorphism(p2, p1)

    def test_homomorphic_equivalence(self):
        q1 = parse_query("ans() :- r(A, B)")
        q2 = parse_query("ans() :- r(X, Y), r(X, Z)")
        # q2 maps onto q1 (Y,Z -> B) and q1 embeds into q2.
        assert homomorphically_equivalent(q1, q2)

    def test_constants_fixed_across_queries(self):
        q1 = parse_query("ans() :- r(A, 7)")
        q2 = parse_query("ans() :- r(B, 8)")
        assert not has_query_homomorphism(q1, q2)
        assert has_query_homomorphism(q1, q1)
