"""The session shard: one worker's slice of the streaming front end.

A :class:`SessionShard` owns everything that must stay *serialized* per
database: the current immutable version of every database assigned to
it, those databases' slice of the maintainer pool (with its byte budget
and checkpoint spilling), the pending-delta queues, and the
maintainability memo.  It executes one session job at a time —
:class:`~repro.service.session.CountRequest`,
:class:`~repro.service.session.UpdateRequest`, or
:class:`~repro.service.session.AttachDatabase` — synchronously in
whatever thread (or process) its owner confines it to.

Two front ends are built on top of it:

* :class:`~repro.service.session.CountingSession` — the single-writer
  session is exactly one shard plus stream batching through a
  :class:`~repro.service.CountingService` worker pool;
* :class:`~repro.service.router.MultiWriterSession` — the sharded
  front end hash-partitions databases onto N shards, each driven by its
  own single-worker executor, so writer streams to distinct databases
  execute in parallel while same-database ordering is preserved.

A shard is **not** thread-safe; its owner must serialize calls (both
front ends do — that serialization *is* the per-database ordering
guarantee).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..counting.engine import CountResult
from ..counting.plan_cache import PlanCache, relation_content_tag
from ..db.database import Database
from ..db.io import database_from_dict, database_to_dict
from ..dynamic.maintainer import (
    BUDGET_FROM_ENV,
    DEFAULT_REDUCED_WIDTH,
    MaintainerPool,
)
from ..dynamic.reduced import MAINTAINED_CLASS_VERSION, ReducedMaintainer
from ..dynamic.updates import Insert, Update, apply_update
from ..exceptions import (
    DecompositionNotFoundError,
    NotAcyclicError,
    ReproError,
)
from .jobs import CountJob
from .service import CountingService


class SessionShard:
    """One serialization domain of the session front end.

    Parameters
    ----------
    service:
        The :class:`CountingService` engine fallback.  When omitted an
        inline service is created (sharded front ends run one shard per
        worker; parallelism comes from the shards, not nested pools).
    plan_cache, cache_dir:
        Forwarded to the created service (ignored when *service* is
        given).  Thread-mode shards share one plan cache; process-mode
        shards each own theirs, warm-started through *cache_dir*.
    maintain, maintainer_capacity, maintainer_budget_bytes,
    maintainer_spill_dir:
        The maintained-path knobs: the pool's entry-count bound, its
        byte budget (``None`` = ``$REPRO_MAINTAINER_BUDGET_MB`` or
        unbounded), and where cold maintainers checkpoint.
    maintain_reduced, reduced_max_width:
        Maintain bounded-#htw shapes (quantified/cyclic) through the
        Theorem 3.7 reduction
        (:class:`~repro.dynamic.reduced.ReducedMaintainer`); the width
        bound caps the construction-time #-decomposition search.
        ``maintain_reduced=False`` restores the quantifier-free-acyclic
        -only maintained class (those shapes then recount).
    label:
        A display name surfaced in :meth:`stats` (``"shard0"``, ...).
    """

    def __init__(self, service: Optional[CountingService] = None,
                 plan_cache: Optional[PlanCache] = None,
                 cache_dir: Optional[str] = None,
                 maintain: bool = True,
                 maintainer_capacity: int = 64,
                 maintainer_budget_bytes=BUDGET_FROM_ENV,
                 maintainer_spill_dir: Optional[str] = None,
                 maintain_reduced: bool = True,
                 reduced_max_width: int = DEFAULT_REDUCED_WIDTH,
                 label: Optional[str] = None):
        if service is None:
            service = CountingService(workers=0, mode="auto",
                                      plan_cache=plan_cache,
                                      cache_dir=cache_dir)
            self._owns_service = True
            if plan_cache is None and label is not None:
                # A private cache (process-mode shards): make its stats
                # attributable in aggregated per-shard snapshots.
                service.plan_cache.label = label
        else:
            self._owns_service = False
        self._service = service
        self.plan_cache = service.plan_cache
        self.maintain = maintain
        self.label = label
        self._databases: Dict[str, Database] = {}
        self._maintainers = MaintainerPool(
            capacity=maintainer_capacity,
            budget_bytes=maintainer_budget_bytes,
            spill_dir=maintainer_spill_dir,
            reduced=maintain_reduced,
            reduced_max_width=reduced_max_width,
        )
        self.maintain_reduced = maintain_reduced
        #: Updates applied to a database but not yet folded into its
        #: maintainers (delta batching: one propagation per *read*).
        self._pending_deltas: Dict[str, List[Update]] = {}
        #: fingerprint -> ``(probe version, verdict)``.  Probing costs a
        #: join-tree attempt (and possibly a #-decomposition search), so
        #: the verdict is memoized per shape — but *versioned* by
        #: :data:`~repro.dynamic.reduced.MAINTAINED_CLASS_VERSION`: a
        #: ``False`` recorded when the maintained class was narrower
        #: (e.g. the version-1 quantifier-free-only probe, or a carried-
        #: over legacy plain-``bool`` entry) is stale, not a verdict, and
        #: is re-probed instead of pinning the shape to recounts forever.
        self._maintainable: Dict[tuple, tuple] = {}
        self.maintained_counts = 0
        self.reduced_counts = 0
        self.engine_counts = 0
        #: Engine-bound counts served by the compiled execution tier
        #: (result strategy ``"compiled"``) — a subset of
        #: ``engine_counts``.
        self.compiled_counts = 0
        self.updates_applied = 0

    def _memo_verdict(self, fingerprint) -> Optional[bool]:
        """The memoized maintainability verdict, or ``None`` when the
        shape is unknown or its cached verdict predates the current
        maintained class (stale entries are dropped and re-probed)."""
        entry = self._maintainable.get(fingerprint)
        if (isinstance(entry, tuple) and len(entry) == 2
                and entry[0] == MAINTAINED_CLASS_VERSION):
            return entry[1]
        if entry is not None:
            del self._maintainable[fingerprint]
        return None

    def _memoize_verdict(self, fingerprint, verdict: bool) -> None:
        self._maintainable[fingerprint] = (MAINTAINED_CLASS_VERSION,
                                           verdict)

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------
    def database(self, name: str) -> Database:
        """The current version of the named database."""
        try:
            return self._databases[name]
        except KeyError:
            raise ReproError(
                f"session has no database named {name!r}; attach it first"
            ) from None

    def database_names(self) -> List[str]:
        return sorted(self._databases)

    def attach_database(self, name: str, database: Database) -> dict:
        """Attach *database* under *name*; replacing an existing name
        drops its maintainers (resident, spilled, and journaled) and
        invalidates its data-dependent plans."""
        invalidated = 0
        replaced = name in self._databases
        if replaced:
            old = self._databases[name]
            self._pending_deltas.pop(name, None)
            self._maintainers.discard(name)
            invalidated = self.plan_cache.invalidate_tags(*(
                relation_content_tag(relation)
                for relation in old.relations()
            ))
        self._databases[name] = database
        return {
            "op": "database", "database": name, "attached": True,
            "replaced": replaced,
            "total_tuples": database.total_tuples(),
            "invalidated_plans": invalidated,
        }

    # ------------------------------------------------------------------
    # Handoff checkpoints (the networked fabric ships these between
    # shard servers; see repro.service.net.directory)
    # ------------------------------------------------------------------
    def checkpoint_database(self, name: str) -> dict:
        """A wire-shippable snapshot of the named database.

        The payload is pure data (relation rows, no live indexes or
        maintainers) — the receiving shard rebuilds maintainers lazily
        from the restored database, exactly as it would after a fresh
        attach.  Callers wrap it in a verifying envelope
        (:func:`~repro.decomposition.serialize.serialize_handoff_state`)
        before shipping.
        """
        database = self.database(name)
        return {
            "database": name,
            "relations": database_to_dict(database),
            "total_tuples": database.total_tuples(),
        }

    def restore_database(self, name: str, payload: dict) -> dict:
        """Adopt a :meth:`checkpoint_database` snapshot as *name*.

        The payload must name the same database it is restored as (a
        misrouted handoff is refused before any state changes); the
        restore itself is an attach, so a replaced database drops its
        maintainers and invalidates its data-dependent plans.
        """
        if not isinstance(payload, dict) or "relations" not in payload:
            raise ReproError(
                f"handoff payload for {name!r} carries no relations"
            )
        if payload.get("database") != name:
            raise ReproError(
                f"handoff payload names database "
                f"{payload.get('database')!r}, not {name!r}"
            )
        return self.attach_database(name,
                                    database_from_dict(payload["relations"]))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, name: str, update: Update,
               label: Optional[str] = None) -> dict:
        """Apply *update* to the named database (atomically).

        Validation happens first, against the current version — an
        invalid update (absent delete, duplicate insert, arity mismatch,
        unknown relation) raises and leaves the database, the
        maintainers, and the plan cache untouched.  On success the new
        version is swapped in, the delta is queued for the maintainers,
        and exactly the plans tagged with the updated relation's old
        contents are invalidated (shape-only plans survive).
        """
        current = self.database(name)
        updated = apply_update(current, update)  # raises before any effect
        if self.plan_cache.has_tagged_plans():
            stale_tag = relation_content_tag(current[update.relation])
            invalidated = self.plan_cache.invalidate_tags(stale_tag)
        else:
            # No data-dependent plans are loaded, so there is nothing to
            # evict — and skipping the (O(n log n)) content tag keeps
            # update cost proportional to the update, not the relation.
            invalidated = 0
        self._databases[name] = updated
        self._pending_deltas.setdefault(name, []).append(update)
        self.updates_applied += 1
        ack = {
            "op": "insert" if isinstance(update, Insert) else "delete",
            "database": name,
            "relation": update.relation,
            "applied": True,
            "total_tuples": updated.total_tuples(),
            "invalidated_plans": invalidated,
        }
        if label is not None:
            ack["job"] = label
        return ack

    def _flush_deltas(self, name: str) -> None:
        """Fold the pending deltas of *name* into its maintainers."""
        pending = self._pending_deltas.pop(name, None)
        if pending:
            self._maintainers.apply(name, pending)

    # ------------------------------------------------------------------
    # Counts
    # ------------------------------------------------------------------
    def _maintained_result(self, request) -> Optional[CountResult]:
        """Serve *request* from a shared maintainer, or ``None`` when the
        shape is not maintainable (or maintenance is disabled)."""
        if not self.maintain or request.method not in ("auto", "maintained"):
            return None
        form = self.plan_cache.canonical(request.query)
        if self._memo_verdict(form.fingerprint) is False:
            return None
        # The maintainer must see every applied update before it is read
        # (and before a fresh DP is built from the current version).
        self._flush_deltas(request.database)
        database = self.database(request.database)
        try:
            entry = self._maintainers.counter_for(
                request.database, request.query, database, form
            )
        except (NotAcyclicError, DecompositionNotFoundError):
            self._memoize_verdict(form.fingerprint, False)
            return None
        self._memoize_verdict(form.fingerprint, True)
        entry.served += 1
        self.maintained_counts += 1
        reduced = isinstance(entry.counter, ReducedMaintainer)
        if reduced:
            self.reduced_counts += 1
        details = {
            "maintained": True,
            "reduced": reduced,
            "database": request.database,
            "plan_fingerprint": form.digest,
            "shared_clients": len(entry.clients),
        }
        if request.label is not None:
            details["job"] = request.label
        count = entry.count  # may lazily repair (and grow) the DP
        self._maintainers.note_read(entry)
        return CountResult(count, "maintained", details)

    def engine_job(self, request) -> CountJob:
        """*request* as a :class:`CountJob` bound to the database version
        current right now — later updates create new versions and can
        never leak into an already-submitted count.

        A deadline covers the whole request, not just engine time:
        requests stamped with ``submitted_at`` (a ``time.monotonic()``
        reading taken by :meth:`MultiWriterSession.submit`) have their
        engine budget shrunk by the time already spent queued behind
        the shard — clamped to 1ms, so a request that waited out its
        whole deadline still gets the fastest possible (approximate)
        answer instead of an unbounded exact run.
        """
        deadline_ms = getattr(request, "deadline_ms", None)
        if deadline_ms is not None:
            submitted_at = getattr(request, "submitted_at", None)
            if submitted_at is not None:
                waited_ms = (time.monotonic() - submitted_at) * 1e3
                deadline_ms = max(deadline_ms - waited_ms, 1.0)
        return CountJob(
            query=request.query,
            database=self.database(request.database),
            method=request.method,
            max_width=request.max_width,
            max_degree=request.max_degree,
            hybrid_width=request.hybrid_width,
            label=request.label,
            deadline_ms=deadline_ms,
            error_budget=getattr(request, "error_budget", None),
        )

    def route_count(self, request) -> Tuple[Optional[CountResult],
                                            Optional[CountJob]]:
        """``(maintained result, engine job)`` — exactly one is set.

        Raises when ``method='maintained'`` is forced but cannot be
        served, distinguishing a disabled session from an unmaintainable
        shape.
        """
        maintained = self._maintained_result(request)
        if maintained is not None:
            return maintained, None
        if request.method == "maintained":
            if not self.maintain:
                raise ReproError(
                    f"{request.query.name}: method 'maintained' requested "
                    f"but this session was created with maintain=False"
                )
            if not self.maintain_reduced:
                # Do not misdiagnose the shape: with the reduction
                # disabled, a perfectly reducible query lands here too.
                raise NotAcyclicError(
                    f"{request.query.name}: method 'maintained' requires "
                    f"a quantifier-free acyclic query on this session "
                    f"(reduction-based maintenance is disabled: "
                    f"maintain_reduced=False)"
                )
            raise NotAcyclicError(
                f"{request.query.name}: method 'maintained' requires a "
                f"quantifier-free acyclic query or a bounded-#htw shape "
                f"maintainable through the Theorem 3.7 reduction"
            )
        return None, self.engine_job(request)

    def count(self, request) -> CountResult:
        """Serve one count now (maintained if possible, engine otherwise)."""
        maintained, job = self.route_count(request)
        if maintained is not None:
            return maintained
        self.engine_counts += 1
        result = self._service.run_job(job)
        if result.strategy == "compiled":
            self.compiled_counts += 1
        return result

    def note_engine_counts(self, n: int, compiled: int = 0) -> None:
        """Account engine-bound counts executed on the shard's behalf
        (the single-writer session batches them through its worker
        pool); *compiled* of them were served by the compiled tier."""
        self.engine_counts += n
        self.compiled_counts += compiled

    # ------------------------------------------------------------------
    # The uniform job interface (what shard workers execute)
    # ------------------------------------------------------------------
    def execute(self, job):
        """Execute one session job; returns its result/acknowledgement."""
        from .session import AttachDatabase, CountRequest, UpdateRequest

        if isinstance(job, CountRequest):
            return self.count(job)
        if isinstance(job, UpdateRequest):
            return self.update(job.database, job.update, label=job.label)
        if isinstance(job, AttachDatabase):
            ack = self.attach_database(job.name, job.database)
            if job.label is not None:
                ack["job"] = job.label
            return ack
        raise ReproError(f"unknown session job {type(job).__name__}")

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Shard counters plus the maintainer pool and plan cache
        snapshots."""
        snapshot = {
            "databases": self.database_names(),
            "maintained_counts": self.maintained_counts,
            "reduced_counts": self.reduced_counts,
            "engine_counts": self.engine_counts,
            "compiled_counts": self.compiled_counts,
            "updates_applied": self.updates_applied,
            "maintainers": self._maintainers.stats(),
            "plan_cache": self.plan_cache.stats(),
        }
        if self.label is not None:
            snapshot["shard"] = self.label
        return snapshot

    def close(self) -> None:
        self._maintainers.close()
        if self._owns_service:
            self._service.close()

    def __enter__(self) -> "SessionShard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
