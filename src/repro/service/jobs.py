"""Batch job descriptions and their JSON file format.

A *job file* bundles named databases with a list of counting jobs::

    {
      "databases": {
        "db0": {"r": [[1, 2], [3, 4]], "s": [[2, 9]]}
      },
      "jobs": [
        {"label": "shape0/0",
         "query": "ans(A, C) :- r(A, B), s(B, C)",
         "database": "db0",
         "method": "auto",
         "max_width": 3}
      ]
    }

``database`` is either a key of the top-level ``databases`` object or a
path to a standalone JSON database file (resolved relative to the job
file).  Jobs naming the same database share one in-memory
:class:`~repro.db.database.Database` instance, which is what lets a
batch build each relation's indexes and statistics once.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..counting.engine import CountResult
from ..db.database import Database
from ..db.io import database_from_dict, database_to_dict, query_to_text
from ..exceptions import ReproError
from ..query.parser import parse_query
from ..query.query import ConjunctiveQuery


class JobFileError(ReproError):
    """A malformed batch job file."""


def json_safe(value):
    """*value* with every non-JSON leaf replaced by its ``repr``.

    Result ``details`` may carry rich objects (decomposition
    fingerprints, tuples, infinities); batch output and the network
    frame codec both need them embeddable in a JSON document without
    ever failing the dump.
    """
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, float) and (math.isinf(value) or math.isnan(value)):
        return repr(value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def result_to_dict(result: CountResult) -> Dict[str, object]:
    """A :class:`~repro.counting.engine.CountResult` as a JSON object."""
    return {
        "count": result.count,
        "strategy": result.strategy,
        "details": json_safe(result.details),
    }


def result_from_dict(payload: Dict[str, object]) -> CountResult:
    """The inverse of :func:`result_to_dict` (details stay JSON-shaped)."""
    try:
        count = payload["count"]
        strategy = payload["strategy"]
    except (KeyError, TypeError):
        raise JobFileError("count result object lacks count/strategy") \
            from None
    details = payload.get("details")
    if not isinstance(details, dict):
        details = {}
    return CountResult(count, str(strategy), details)


@dataclass
class CountJob:
    """One counting request: a query over a database, plus engine knobs.

    ``deadline_ms`` / ``error_budget`` make the request deadline-aware:
    the engine answers exactly when its cost model predicts the exact
    strategies fit the budget, and from the approximate tier (a
    ``(estimate, epsilon, delta)`` Monte Carlo result) otherwise — see
    :func:`repro.counting.engine.count_answers`.
    """

    query: ConjunctiveQuery
    database: Database
    method: str = "auto"
    max_width: int = 3
    max_degree: float = math.inf
    hybrid_width: int = 2
    label: Optional[str] = None
    deadline_ms: Optional[float] = None
    error_budget: Optional[float] = None

    def engine_kwargs(self) -> Dict[str, object]:
        """The keyword arguments this job passes to ``count_answers``."""
        return {
            "method": self.method,
            "max_width": self.max_width,
            "max_degree": self.max_degree,
            "hybrid_width": self.hybrid_width,
            "deadline_ms": self.deadline_ms,
            "error_budget": self.error_budget,
        }


def load_jobs(path: str) -> List[CountJob]:
    """Parse a job file into :class:`CountJob`\\ s with shared databases."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or not isinstance(payload.get("jobs"),
                                                      list):
        raise JobFileError(f"{path}: expected an object with a 'jobs' list")
    named: Dict[str, Database] = {
        name: database_from_dict(spec)
        for name, spec in payload.get("databases", {}).items()
    }
    loaded_paths: Dict[str, Database] = {}
    base_dir = os.path.dirname(os.path.abspath(path))
    jobs: List[CountJob] = []
    for position, spec in enumerate(payload["jobs"]):
        if not isinstance(spec, dict):
            raise JobFileError(
                f"{path}: job {position} must be an object, "
                f"got {type(spec).__name__}"
            )
        try:
            query_text = spec["query"]
            reference = spec["database"]
        except KeyError as missing:
            raise JobFileError(
                f"{path}: job {position} lacks {missing.args[0]!r}"
            ) from None
        if not isinstance(query_text, str) or not isinstance(reference, str):
            raise JobFileError(
                f"{path}: job {position}: 'query' and 'database' must be "
                f"strings"
            )
        query = parse_query(query_text)
        if reference in named:
            database = named[reference]
        else:
            resolved = os.path.join(base_dir, reference)
            if resolved not in loaded_paths:
                try:
                    with open(resolved) as handle:
                        loaded_paths[resolved] = database_from_dict(
                            json.load(handle)
                        )
                except OSError as error:
                    raise JobFileError(
                        f"{path}: job {position}: database {reference!r} is "
                        f"neither a named database nor a readable file "
                        f"({error})"
                    ) from None
            database = loaded_paths[resolved]
        max_degree = spec.get("max_degree")
        deadline_ms = spec.get("deadline_ms")
        error_budget = spec.get("error_budget")
        jobs.append(CountJob(
            query=query,
            database=database,
            method=spec.get("method", "auto"),
            max_width=int(spec.get("max_width", 3)),
            max_degree=math.inf if max_degree is None else float(max_degree),
            hybrid_width=int(spec.get("hybrid_width", 2)),
            label=spec.get("label"),
            deadline_ms=None if deadline_ms is None else float(deadline_ms),
            error_budget=(None if error_budget is None
                          else float(error_budget)),
        ))
    return jobs


def dump_jobs(path: str, jobs: Sequence[CountJob]) -> None:
    """Write *jobs* as a job file, deduplicating shared databases.

    Databases are named ``db0, db1, ...`` in first-appearance order;
    jobs whose :class:`~repro.db.database.Database` instance (or equal
    content) repeats reference the same name.
    """
    names: List[Database] = []
    payload_dbs: Dict[str, object] = {}

    def name_of(database: Database) -> str:
        for index, known in enumerate(names):
            if known is database or known == database:
                return f"db{index}"
        names.append(database)
        name = f"db{len(names) - 1}"
        payload_dbs[name] = database_to_dict(database)
        return name

    payload_jobs = []
    for index, job in enumerate(jobs):
        spec: Dict[str, object] = {
            "label": job.label if job.label is not None else f"job{index}",
            "query": query_to_text(job.query),
            "database": name_of(job.database),
            "method": job.method,
            "max_width": job.max_width,
            "hybrid_width": job.hybrid_width,
        }
        if not math.isinf(job.max_degree):
            spec["max_degree"] = job.max_degree
        if job.deadline_ms is not None:
            spec["deadline_ms"] = job.deadline_ms
        if job.error_budget is not None:
            spec["error_budget"] = job.error_budget
        payload_jobs.append(spec)
    with open(path, "w") as handle:
        json.dump({"databases": payload_dbs, "jobs": payload_jobs},
                  handle, indent=2)
        handle.write("\n")
