"""Tests for the batch counting service, job files, and the batch CLI.

Covers the service's execution modes, explain-trail fidelity, the
JSON-serializability contract on ``CountResult.details`` (decision
trails must round-trip through ``json``), job-file round-trips with
shared databases, and the ``python -m repro batch`` subcommand.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.cli import main
from repro.counting.engine import count_answers
from repro.service import (
    CountJob,
    CountingService,
    JobFileError,
    PlanCache,
    dump_jobs,
    load_jobs,
)
from repro.workloads.batch_jobs import batch_jobs, write_batch_job_file

WORKERS = max(2, int(os.environ.get("REPRO_SERVICE_WORKERS", "2") or 2))


@pytest.fixture
def small_jobs():
    return batch_jobs(n_jobs=6, n_shapes=2, seed=42,
                      n_variables=5, n_atoms=4, domain_size=5,
                      tuples_per_relation=12)


class TestCountingService:
    def test_inline_batch_matches_direct_engine_calls(self, small_jobs):
        service = CountingService(plan_cache=PlanCache())
        results = service.run_batch(small_jobs)
        for job, result in zip(small_jobs, results):
            direct = count_answers(job.query, job.database,
                                   **job.engine_kwargs())
            assert result.count == direct.count
            assert result.strategy == direct.strategy

    def test_results_keep_explain_trails(self, small_jobs):
        service = CountingService(plan_cache=PlanCache())
        for result in service.run_batch(small_jobs):
            assert "decision_trail" in result.details
            rendered = result.explain()
            assert "decision trail" in rendered
            assert result.strategy in rendered

    def test_plan_cache_shared_across_batches(self, small_jobs):
        service = CountingService(plan_cache=PlanCache())
        service.run_batch(small_jobs)
        after_first = service.plan_cache.stats()
        service.run_batch(small_jobs)
        after_second = service.plan_cache.stats()
        # The second batch computes no new plans at all.
        assert after_second["misses"] == after_first["misses"]
        assert after_second["hits"] > after_first["hits"]

    def test_thread_pool_matches_inline(self, small_jobs):
        inline = CountingService(plan_cache=PlanCache())
        threaded = CountingService(workers=WORKERS, mode="thread",
                                   plan_cache=PlanCache())
        inline_counts = [r.count for r in inline.run_batch(small_jobs)]
        threaded_counts = [r.count for r in threaded.run_batch(small_jobs)]
        assert threaded_counts == inline_counts

    def test_process_pool_matches_inline(self, small_jobs):
        inline = CountingService(plan_cache=PlanCache())
        inline_counts = [r.count for r in inline.run_batch(small_jobs)]
        with CountingService(workers=WORKERS, mode="process") as pooled:
            pooled_results = pooled.run_batch(small_jobs)
            assert [r.count for r in pooled_results] == inline_counts
            # Labels survive the process boundary.
            assert [r.details["job"] for r in pooled_results] == \
                [job.label for job in small_jobs]
            # The pool persists across batches (per-worker caches carry
            # over) and a second batch still agrees.
            assert pooled._process_pool is not None
            again = pooled.run_batch(small_jobs)
            assert [r.count for r in again] == inline_counts
            assert pooled.stats()["plan_cache_scope"] == "per-worker"
        assert pooled._process_pool is None  # context exit closed it

    def test_stats_scope_for_shared_modes(self):
        assert CountingService().stats()["plan_cache_scope"] == "shared"
        assert CountingService(workers=2, mode="thread").stats()[
            "plan_cache_scope"] == "shared"

    def test_empty_batch(self):
        assert CountingService().run_batch([]) == []

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CountingService(mode="fleet")

    def test_mode_resolution(self):
        assert CountingService(workers=0, mode="auto").mode == "inline"
        assert CountingService(workers=1, mode="auto").mode == "inline"
        assert CountingService(workers=4, mode="auto").mode == "process"
        # An explicitly requested pool mode is honored, never silently
        # downgraded; workers=0 then defaults to default_workers().
        threaded = CountingService(workers=0, mode="thread")
        assert threaded.mode == "thread" and threaded.workers >= 1
        single = CountingService(workers=1, mode="process")
        assert single.mode == "process" and single.workers == 1
        assert single.run_batch([]) == []


class TestDetailsSerialization:
    def test_decision_trail_round_trips_through_json(self, small_jobs):
        """The ISSUE 2 satellite: decision-trail entries are plain data."""
        service = CountingService(plan_cache=PlanCache())
        for result in service.run_batch(small_jobs):
            payload = json.dumps(result.details)
            restored = json.loads(payload)
            trail = restored["decision_trail"]
            assert trail == result.details["decision_trail"]
            for entry in trail:
                assert set(entry) >= {"strategy", "estimated_cost",
                                      "probed", "chosen"}
                assert isinstance(entry["strategy"], str)
                assert isinstance(entry["estimated_cost"], (int, float))
                assert isinstance(entry["probed"], bool)
                assert isinstance(entry["chosen"], bool)

    def test_forced_method_details_are_json_plain(self, path_query,
                                                  path_database):
        for method in ("structural", "degree", "brute_force"):
            result = count_answers(path_query, path_database, method=method)
            assert json.loads(json.dumps(result.details)) is not None

    def test_live_objects_in_custom_details_are_flattened(self):
        from repro.counting.engine import (
            register_strategy,
            unregister_strategy,
        )
        from repro.db import Database
        from repro.query import parse_query

        register_strategy(
            "leaky", lambda ctx: True, lambda ctx: 0.0,
            lambda ctx, witness: (7, {"object": object(), "ok": [1, (2, 3)]}),
        )
        try:
            q = parse_query("ans(A) :- r(A, B)")
            db = Database.from_dict({"r": [(1, 2)]})
            result = count_answers(q, db, method="leaky")
            json.dumps(result.details)  # must not raise
            assert isinstance(result.details["object"], str)
            assert result.details["ok"] == [1, [2, 3]]
        finally:
            unregister_strategy("leaky")


class TestJobFiles:
    def test_round_trip_preserves_jobs_and_shares_databases(self, tmp_path,
                                                            small_jobs):
        path = tmp_path / "jobs.json"
        dump_jobs(str(path), small_jobs)
        loaded = load_jobs(str(path))
        assert len(loaded) == len(small_jobs)
        for original, restored in zip(small_jobs, loaded):
            assert restored.query.atoms == original.query.atoms
            assert restored.query.free_variables == \
                original.query.free_variables
            assert restored.database == original.database
            assert restored.method == original.method
            assert restored.max_width == original.max_width
            assert math.isinf(restored.max_degree)
        # Jobs of the same shape share one database *instance*.
        assert loaded[0].database is loaded[2].database

    def test_database_path_reference(self, tmp_path):
        db_path = tmp_path / "db.json"
        db_path.write_text(json.dumps({"r": [[1, 2], [2, 3]]}))
        jobs_path = tmp_path / "jobs.json"
        jobs_path.write_text(json.dumps({
            "jobs": [
                {"query": "ans(A) :- r(A, B)", "database": "db.json"},
                {"query": "ans(B) :- r(A, B)", "database": "db.json"},
            ],
        }))
        jobs = load_jobs(str(jobs_path))
        assert len(jobs) == 2
        assert jobs[0].database is jobs[1].database  # shared via path
        assert CountingService().run_batch(jobs)[0].count == 2

    def test_malformed_job_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"jobs": [{"query": "ans(A) :- r(A, B)"}]}))
        with pytest.raises(JobFileError):
            load_jobs(str(path))
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(JobFileError):
            load_jobs(str(path))
        path.write_text(json.dumps({"jobs": "ans(A) :- r(A, B)"}))
        with pytest.raises(JobFileError):
            load_jobs(str(path))
        path.write_text(json.dumps({"jobs": ["ans(A) :- r(A, B)"]}))
        with pytest.raises(JobFileError):
            load_jobs(str(path))
        path.write_text(json.dumps({
            "databases": {"d": {"r": [[1, 2]]}},
            "jobs": [{"query": 42, "database": "d"}],
        }))
        with pytest.raises(JobFileError):
            load_jobs(str(path))

    def test_missing_database_reference_raises(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({
            "jobs": [{"query": "ans(A) :- r(A, B)",
                      "database": "nowhere.json"}],
        }))
        with pytest.raises(JobFileError):
            load_jobs(str(path))


class TestBatchCli:
    def test_batch_command_runs_and_reports(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        write_batch_job_file(str(path), n_jobs=4, n_shapes=2, seed=3,
                             n_variables=5, n_atoms=4, domain_size=5,
                             tuples_per_relation=12)
        code = main(["batch", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "jobs     : 4" in out
        assert "plan cache:" in out
        assert "strategy=" in out

    def test_batch_command_writes_json_results(self, tmp_path, capsys):
        jobs_path = tmp_path / "jobs.json"
        out_path = tmp_path / "results.json"
        write_batch_job_file(str(jobs_path), n_jobs=4, n_shapes=2, seed=3,
                             n_variables=5, n_atoms=4, domain_size=5,
                             tuples_per_relation=12)
        code = main(["batch", str(jobs_path), "--workers", str(WORKERS),
                     "--mode", "thread", "--output", str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert len(payload) == 4
        for entry in payload:
            assert set(entry) >= {"label", "query", "count", "strategy",
                                  "details"}
            assert "decision_trail" in entry["details"]

    def test_batch_command_explain(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        write_batch_job_file(str(path), n_jobs=2, n_shapes=1, seed=3,
                             n_variables=4, n_atoms=3, domain_size=4,
                             tuples_per_relation=8)
        code = main(["batch", str(path), "--explain"])
        out = capsys.readouterr().out
        assert code == 0
        assert "decision trail" in out

    def test_batch_command_missing_file(self, capsys):
        code = main(["batch", "/nonexistent/jobs.json"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
