"""Tests for serialization (:mod:`repro.db.io`)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.db.io import (
    ARITY_KEY,
    database_from_dict,
    database_to_dict,
    dump_database,
    load_database,
    query_to_text,
)
from repro.db.relation import Relation
from repro.exceptions import DatabaseError
from repro.query import parse_query
from repro.workloads.random_instances import random_query


class TestDatabaseRoundTrip:
    def test_simple_round_trip(self):
        database = Database.from_dict({
            "r": [(1, 2), (3, 4)], "s": [("a", "b")],
        })
        assert database_from_dict(database_to_dict(database)) == database

    def test_empty_relation_round_trips_with_arity(self):
        database = Database([Relation("r", 3, [])])
        restored = database_from_dict(database_to_dict(database))
        assert restored["r"].arity == 3
        assert len(restored["r"]) == 0

    def test_empty_relation_without_arity_rejected(self):
        with pytest.raises(DatabaseError):
            database_from_dict({"r": []})

    def test_missing_arity_map_tolerated(self):
        restored = database_from_dict({"r": [[1, 2]]})
        assert restored["r"].arity == 2

    def test_nested_lists_become_tuples(self):
        restored = database_from_dict({"r": [[[1, 2], 3]]})
        assert ((1, 2), 3) in restored["r"]

    def test_file_round_trip(self, tmp_path):
        database = Database.from_dict({"r": [(1, "x")], "s": [(2,)]})
        path = str(tmp_path / "db.json")
        dump_database(database, path)
        assert load_database(path) == database
        # The file is plain JSON with the arity map present.
        payload = json.loads(open(path).read())
        assert payload[ARITY_KEY] == {"r": 2, "s": 1}

    def test_json_serializable(self):
        database = Database.from_dict({"r": [(1, None), (True, "x")]})
        json.dumps(database_to_dict(database))  # must not raise


class TestQueryText:
    def test_round_trip_simple(self):
        query = parse_query("ans(A, C) :- r(A, B), s(B, C)")
        assert parse_query(query_to_text(query)) == query

    def test_round_trip_constants(self):
        query = parse_query("ans(A) :- r(A, 'rome'), s(A, 42)")
        assert parse_query(query_to_text(query)) == query

    def test_round_trip_repeated_variables(self):
        query = parse_query("ans(A) :- loop(A, A)")
        assert parse_query(query_to_text(query)) == query

    def test_boolean_query_head(self):
        query = parse_query("ans() :- r(A, B)")
        text = query_to_text(query)
        assert text.startswith("ans() :- ")
        assert parse_query(text) == query

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_random_queries_round_trip(self, seed):
        query = random_query(5, 4, seed=seed)
        assert parse_query(query_to_text(query)) == query
