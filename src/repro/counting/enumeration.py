"""Answer enumeration with polynomial delay ([GS13], cited in Section 1).

The paper contrasts counting with the *enumeration* problem: over a
#-covered query, the answers (projections onto the free variables) can be
listed one by one with polynomial delay, without materializing the
exponential set of full solutions.  Counting needs more (the whole point of
the paper), but enumeration is the natural companion API and shares the
same machinery:

1. run the Theorem 3.7 preprocessing — exact, globally consistent bag
   relations restricted to the free variables;
2. walk the join tree in a fixed order, extending a partial answer bag by
   bag; global consistency guarantees every partial assignment extends to
   a full answer, so the search never backtracks more than one level —
   each answer is emitted after polynomially many steps.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from ..db.algebra import SubstitutionSet
from ..db.database import Database
from ..decomposition.sharp import find_sharp_hypertree_decomposition
from ..exceptions import DecompositionNotFoundError
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable
from .structural import exact_bag_relations

Answer = Dict[Variable, Hashable]


def iter_answers(query: ConjunctiveQuery, database: Database,
                 width: Optional[int] = None, max_width: int = 3
                 ) -> Iterator[Answer]:
    """Yield the answers of *query* with polynomial delay.

    Requires a #-hypertree decomposition of width at most *max_width* (or
    exactly *width*); raises :class:`DecompositionNotFoundError` otherwise.
    Answers are dictionaries over the free variables, emitted without
    duplicates in a deterministic order.
    """
    widths = [width] if width is not None else range(1, max_width + 1)
    decomposition = None
    for k in widths:
        decomposition = find_sharp_hypertree_decomposition(query, k)
        if decomposition is not None:
            break
    if decomposition is None:
        raise DecompositionNotFoundError(
            f"{query.name} has no #-hypertree decomposition of width "
            f"<= {max_width}"
        )
    reduced, tree = exact_bag_relations(decomposition, database)
    free = query.free_variables
    projected = [relation.project(free) for relation in reduced]
    yield from _enumerate_over_tree(projected, tree, free)


def _enumerate_over_tree(bags: List[SubstitutionSet], tree,
                         free: frozenset) -> Iterator[Answer]:
    """Backtracking enumeration over globally consistent projected bags.

    Because every bag relation is an exact projection of the answer set,
    any locally consistent partial assignment extends to an answer: the
    recursion only ever fails at the bag where a new conflict is
    introduced, giving polynomial delay between consecutive answers.
    """
    order = [vertex for vertex, _parent, _children in
             reversed(tree.rooted_orders())]  # top-down
    schemas = [bag.schema for bag in bags]
    free_order: List[Variable] = []
    for vertex in order:
        for variable in schemas[vertex]:
            if variable not in free_order:
                free_order.append(variable)

    def extend(index: int, partial: Dict[Variable, Hashable]
               ) -> Iterator[Answer]:
        if index == len(order):
            yield dict(partial)
            return
        vertex = order[index]
        bag = bags[vertex]
        bound = {v: partial[v] for v in bag.schema if v in partial}
        seen: set = set()
        for row in bag.select(bound).rows if bound else bag.rows:
            assignment = dict(zip(bag.schema, row))
            key = tuple(
                assignment[v] for v in bag.schema if v not in partial
            )
            if key in seen:
                continue
            seen.add(key)
            partial.update(assignment)
            yield from extend(index + 1, partial)
            for variable in assignment:
                if variable not in bound:
                    partial.pop(variable, None)

    if not bags:
        return
    if any(len(bag) == 0 for bag in bags):
        return
    yield from extend(0, {})


def enumerate_answers(query: ConjunctiveQuery, database: Database,
                      limit: Optional[int] = None, **kwargs
                      ) -> List[Answer]:
    """Materialize (up to *limit*) answers via :func:`iter_answers`."""
    result: List[Answer] = []
    for answer in iter_answers(query, database, **kwargs):
        result.append(answer)
        if limit is not None and len(result) >= limit:
            break
    return result
