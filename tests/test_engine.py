"""Unit tests for the auto-selecting counting engine."""

import pytest

from repro.counting.brute_force import count_brute_force
from repro.counting.compile import compiled_enabled
from repro.counting.engine import STRATEGIES, count_answers
from repro.db import Database
from repro.exceptions import DecompositionNotFoundError, NotAcyclicError
from repro.query import parse_query
from repro.workloads import (
    d2_bar_database,
    q0,
    q2_bar,
    workforce_database,
)


class TestStrategySelection:
    def test_acyclic_strategy_for_quantifier_free(self):
        q = parse_query("ans(A, B) :- r(A, B)")
        db = Database.from_dict({"r": [(1, 2), (3, 4)]})
        result = count_answers(q, db)
        # The compiled tier executes the same join-tree plan when enabled.
        expected = "compiled" if compiled_enabled() else "acyclic"
        assert result.strategy == expected
        assert result.count == 2

    def test_structural_strategy_for_q0(self):
        db = workforce_database(seed=2)
        result = count_answers(q0(), db)
        expected = "compiled" if compiled_enabled() else "structural"
        assert result.strategy == expected
        assert result.details["width"] == 2
        assert result.count == count_brute_force(q0(), db)

    def test_hybrid_strategy_for_q2_bar(self):
        # max_width=2: at width 3 the h=2 instance is still structurally
        # coverable (unbounded #-ghw is an asymptotic statement in h).
        query, db = q2_bar(2), d2_bar_database(2)
        result = count_answers(query, db, max_width=2)
        assert result.strategy == "hybrid"
        assert result.details["degree"] == 1
        assert result.count == 4

    def test_int_conversion(self):
        q = parse_query("ans(A) :- r(A, B)")
        db = Database.from_dict({"r": [(1, 2)]})
        assert int(count_answers(q, db)) == 1


class TestForcedStrategies:
    def test_each_applicable_strategy_agrees(self):
        q = parse_query("ans(A) :- r(A, B), s(B, C)")
        db = Database.from_dict({
            "r": [(1, 2), (1, 3), (4, 2)],
            "s": [(2, 5), (3, 6)],
        })
        expected = count_brute_force(q, db)
        for method in ("structural", "hybrid", "degree", "brute_force"):
            assert count_answers(q, db, method=method).count == expected

    def test_acyclic_method_rejects_projected_query(self):
        q = parse_query("ans(A) :- r(A, B)")
        db = Database.from_dict({"r": [(1, 2)]})
        with pytest.raises(NotAcyclicError):
            count_answers(q, db, method="acyclic")

    def test_structural_method_rejects_wide_query(self):
        from repro.workloads import q2_acyclic, d2_database

        with pytest.raises(DecompositionNotFoundError):
            count_answers(q2_acyclic(3), d2_database(3),
                          method="structural", max_width=2)

    def test_unknown_method_rejected(self):
        q = parse_query("ans(A) :- r(A, B)")
        db = Database.from_dict({"r": [(1, 2)]})
        with pytest.raises(ValueError):
            count_answers(q, db, method="magic")

    def test_strategies_constant_complete(self):
        assert STRATEGIES == (
            "compiled", "acyclic", "structural", "hybrid", "degree",
            "brute_force", "approx",
        )
