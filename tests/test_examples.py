"""Smoke tests: every example script runs to completion.

Examples are living documentation; a refactor that breaks one should fail
CI, not a reader.  Each script runs in a temporary directory (some write
output files) with a generous timeout.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert len(SCRIPTS) >= 9


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, tmp_path):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script} printed nothing"
