"""Multi-writer workload generator: concurrent session streams.

The sharded front end's traffic shape is several *writers*, each owning
a disjoint set of named databases and feeding the session an interleaved
update/count stream over them.  This module emits exactly that:
:func:`multi_writer_streams` builds one
:func:`~repro.workloads.session_stream.session_stream_jobs` stream per
writer, with database names prefixed per writer (``w0-db0``, ``w1-db0``,
...) so the streams touch **distinct** databases — the regime where the
router's per-database serialization lets all writers run in parallel,
and where any interleaving must commute with per-database sequential
replay (property-tested in ``tests/test_differential_dynamic.py``).

``python -m repro.workloads.multi_writer jobs --writers 3`` writes one
``jobs-w<i>.jsonl`` file per writer; the CLI consumes them as
``python -m repro session jobs-w0.jsonl jobs-w1.jsonl ... --shards 2``.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..service.session import SessionJob, dump_stream
from .session_stream import session_stream_jobs


def multi_writer_streams(n_writers: int = 2, n_shapes: int = 2,
                         rounds: int = 6, seed: Optional[int] = None,
                         updates_per_round: int = 2,
                         **instance_kwargs) -> List[List[SessionJob]]:
    """One session stream per writer, over disjoint database sets.

    Each writer's stream is an independently seeded
    :func:`session_stream_jobs` instance (*n_shapes* databases,
    *rounds* update/count rounds) whose database names carry the
    writer's prefix — so any two streams commute under the sharded
    front end.  A ``shape_mix=`` keyword rides *instance_kwargs* through
    to :func:`~repro.workloads.session_stream.session_shape_instances`
    (``quantified``/``cyclic``/``mixed`` exercise the reduction-based
    maintainer on every shard).
    """
    rng = random.Random(seed)
    return [
        session_stream_jobs(
            n_shapes=n_shapes, rounds=rounds,
            seed=rng.randrange(2 ** 30),
            updates_per_round=updates_per_round,
            name_prefix=f"w{writer}-",
            **instance_kwargs,
        )
        for writer in range(n_writers)
    ]


def write_multi_writer_streams(path_prefix: str, n_writers: int = 2,
                               n_shapes: int = 2, rounds: int = 6,
                               seed: Optional[int] = None,
                               **kwargs) -> List[str]:
    """Write one ``<path_prefix>-w<i>.jsonl`` stream per writer;
    returns the file paths."""
    streams = multi_writer_streams(n_writers=n_writers, n_shapes=n_shapes,
                                   rounds=rounds, seed=seed, **kwargs)
    paths = []
    for index, stream in enumerate(streams):
        path = f"{path_prefix}-w{index}.jsonl"
        dump_stream(path, stream)
        paths.append(path)
    return paths


def _main(argv=None) -> int:  # pragma: no cover - thin CLI wrapper
    import argparse

    parser = argparse.ArgumentParser(
        description="emit multi-writer streams for "
                    "`python -m repro session ... --shards N`"
    )
    from .session_stream import SHAPE_MIXES

    parser.add_argument("prefix",
                        help="output path prefix (-w<i>.jsonl is appended)")
    parser.add_argument("--writers", type=int, default=2)
    parser.add_argument("--shapes", choices=SHAPE_MIXES, default="classic",
                        help="shape mix per writer (same vocabulary as "
                             "the session_stream CLI)")
    parser.add_argument("--n-shapes", type=int, default=2,
                        help="databases per writer")
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    paths = write_multi_writer_streams(
        args.prefix, n_writers=args.writers, n_shapes=args.n_shapes,
        rounds=args.rounds, seed=args.seed, shape_mix=args.shapes,
    )
    for path in paths:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(_main())
