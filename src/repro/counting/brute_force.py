"""Brute-force counting baseline.

Materializes the full join of the query's atoms and projects onto the free
variables.  Exponential in general — this is exactly the "straightforward
approach" the paper's introduction warns about — but it is exact, simple,
and serves as the ground-truth oracle for every other algorithm in the test
suite and as the baseline in the benchmarks.
"""

from __future__ import annotations

from ..db.algebra import SubstitutionSet, join_all
from ..db.database import Database
from ..query.query import ConjunctiveQuery


def full_join(query: ConjunctiveQuery, database: Database) -> SubstitutionSet:
    """``Q(D)``: all satisfying substitutions over ``vars(Q)``.

    Atoms are joined smallest-relation-first with greedy connectivity (the
    shared :func:`~repro.db.algebra.join_all` ordering) to keep
    intermediate results from degenerating into cross products.
    """
    return join_all(
        SubstitutionSet.from_atom(atom, database[atom.relation])
        for atom in query.atoms_sorted()
    )


def answers(query: ConjunctiveQuery, database: Database) -> SubstitutionSet:
    """``pi_free(Q)(Q(D))``: the set of answers of the query."""
    return full_join(query, database).project(query.free_variables)


def count_brute_force(query: ConjunctiveQuery, database: Database) -> int:
    """``count(Q, D)`` by full materialization (the baseline)."""
    return len(answers(query, database))
