"""The batched counting service.

:class:`CountingService` executes batches of :class:`~.jobs.CountJob`
requests over a configurable worker pool and a **shared plan cache**:

* ``mode="inline"`` — sequential, in-process, fully deterministic; the
  baseline the differential tests compare everything against.
* ``mode="thread"`` — a ``ThreadPoolExecutor``.  All workers share the
  service's :class:`~repro.counting.plan_cache.PlanCache` *and* the
  per-relation index/statistics caches, so repeated shapes and repeated
  databases pay their plan search and index builds once per service.
  Counting is pure Python (GIL-bound), so threads mostly help when jobs
  block on plan-cache warm-up performed by a sibling.
* ``mode="process"`` — a ``ProcessPoolExecutor``.  Jobs are grouped by
  database instance and shipped group-wise, so each worker process
  pickles a given database once per chunk; every worker keeps its own
  process-wide plan cache (OS processes share nothing — the service's
  own ``plan_cache`` is **not** consulted in this mode), which warms up
  per repeated shape within each worker.  The pool persists across
  ``run_batch`` calls until :meth:`CountingService.close`, so those
  per-worker caches do carry over from batch to batch.

Results come back in job order as the engine's
:class:`~repro.counting.engine.CountResult` objects with the full
explain/decision-trail details intact (and JSON-serializable).
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..counting.engine import CountResult, count_answers
from ..counting.plan_cache import (
    PLAN_CACHE_DIR_ENV,
    PersistentPlanCache,
    PlanCache,
    default_plan_cache,
    set_default_plan_cache,
)
from ..db.database import Database
from ..envknobs import env_int
from .jobs import CountJob

#: Recognized execution modes.
MODES = ("auto", "inline", "thread", "process")


def _warm_worker(cache_dir: Optional[str]) -> None:
    """Process-pool initializer: route the worker's default plan cache
    to the shared spill directory, so the worker starts *warm* — its
    first job of a persisted shape loads the plan from disk instead of
    re-running the decomposition search."""
    if cache_dir:
        set_default_plan_cache(PersistentPlanCache(cache_dir))


def _worker_cache_stats(_: object = None) -> dict:
    """Process-pool probe: the worker's default plan-cache counters."""
    return default_plan_cache().stats()


def _run_job_group(group: Tuple[Database, List[tuple]]) -> List[CountResult]:
    """Process-pool worker: run one database's chunk of jobs.

    Module-level so it pickles; runs each job through the worker's own
    process-wide default plan cache (shapes repeat within a chunk, so the
    cache warms up even across the pickle boundary — and, with a spill
    directory configured, across process lifetimes).
    """
    database, specs = group
    results = []
    for query, kwargs in specs:
        results.append(count_answers(query, database, **kwargs))
    return results


class CountingService:
    """Execute batches of counting jobs over a shared plan cache.

    Parameters
    ----------
    workers:
        Worker-pool size.  Under ``mode="auto"``, ``0``/``1`` mean
        inline execution.  An *explicitly* requested pool mode is always
        honored: ``workers=0`` then defaults to :func:`default_workers`
        and ``workers=1`` runs a genuine single-worker pool.
    mode:
        One of :data:`MODES`.  ``"auto"`` picks ``"inline"`` for
        ``workers <= 1`` and ``"process"`` otherwise.
    plan_cache:
        The shared :class:`PlanCache`; a fresh one is created when
        omitted.  Pass the same cache to several services to share plans
        across them.
    cache_dir:
        A persistent plan-cache spill directory (defaults to
        ``$REPRO_PLAN_CACHE_DIR`` when set).  Inline/thread services then
        back their shared cache with it (unless an explicit *plan_cache*
        was given); process pools pass it to every worker's initializer,
        so a fresh pool over a populated directory starts warm.
    """

    def __init__(self, workers: int = 0, mode: str = "auto",
                 plan_cache: Optional[PlanCache] = None,
                 cache_dir: Optional[str] = None):
        if mode not in MODES:
            raise ValueError(f"unknown service mode {mode!r}; "
                             f"expected one of {MODES}")
        self.workers = max(0, int(workers))
        if mode == "auto":
            mode = "inline" if self.workers <= 1 else "process"
        elif mode in ("thread", "process") and self.workers == 0:
            self.workers = default_workers()
        self.mode = mode
        if self.mode in ("thread", "process"):
            self.workers = max(1, self.workers)
        if cache_dir is None:
            cache_dir = os.environ.get(PLAN_CACHE_DIR_ENV) or None
        self.cache_dir = cache_dir
        if plan_cache is None:
            plan_cache = (PersistentPlanCache(cache_dir) if cache_dir
                          else PlanCache())
        self.plan_cache = plan_cache
        self._process_pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def run_job(self, job: CountJob) -> CountResult:
        """Run one job inline against the shared plan cache."""
        result = count_answers(job.query, job.database,
                               plan_cache=self.plan_cache,
                               **job.engine_kwargs())
        if job.label is not None:
            result.details["job"] = job.label
        return result

    def run_batch(self, jobs: Sequence[CountJob]) -> List[CountResult]:
        """Run *jobs* and return their results in job order."""
        jobs = list(jobs)
        if not jobs:
            return []
        if self.mode == "inline":
            return [self.run_job(job) for job in jobs]
        if self.mode == "thread":
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                return list(pool.map(self.run_job, jobs))
        return self._run_batch_processes(jobs)

    # ------------------------------------------------------------------
    def _run_batch_processes(self, jobs: List[CountJob]) -> List[CountResult]:
        """Group jobs by database, chunk the groups, fan out, reassemble."""
        by_database: List[Tuple[Database, List[int]]] = []
        for index, job in enumerate(jobs):
            for database, indices in by_database:
                if database is job.database:
                    indices.append(index)
                    break
            else:
                by_database.append((job.database, [index]))
        # Aim for a few chunks per worker so stragglers even out, while
        # never splitting smaller than one job.
        target_chunks = max(self.workers * 2, 1)
        chunk_size = max(1, math.ceil(len(jobs) / target_chunks))
        chunks: List[Tuple[List[int], Tuple[Database, List[tuple]]]] = []
        for database, indices in by_database:
            for start in range(0, len(indices), chunk_size):
                piece = indices[start:start + chunk_size]
                specs = [
                    (jobs[i].query, jobs[i].engine_kwargs()) for i in piece
                ]
                chunks.append((piece, (database, specs)))
        results: List[Optional[CountResult]] = [None] * len(jobs)
        pool = self._ensure_pool()
        futures = [
            (piece, pool.submit(_run_job_group, group))
            for piece, group in chunks
        ]
        for piece, future in futures:
            for index, result in zip(piece, future.result()):
                if jobs[index].label is not None:
                    result.details["job"] = jobs[index].label
                results[index] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Plan-cache counters plus the service configuration.

        ``plan_cache_scope`` says where plans actually live: ``"shared"``
        for inline/thread modes (this service's cache), ``"per-worker"``
        for process mode (each worker process keeps its own; the
        counters reported here stay at zero by construction).
        """
        snapshot = self.plan_cache.stats()
        snapshot.update({
            "workers": self.workers,
            "mode": self.mode,
            "plan_cache_scope": (
                "per-worker" if self.mode == "process" else "shared"
            ),
            "cache_dir": self.cache_dir,
        })
        return snapshot

    def worker_cache_stats(self) -> List[dict]:
        """Plan-cache counters as seen by the executing workers.

        Inline/thread modes report the shared cache (one snapshot).  In
        process mode one probe per worker is submitted to the persistent
        pool; with more than one worker the pool's dispatch decides which
        workers answer, so treat multi-worker results as a sample (the
        warm-start tests pin ``workers=1`` for determinism).
        """
        if self.mode != "process":
            return [self.plan_cache.stats()]
        pool = self._ensure_pool()
        futures = [pool.submit(_worker_cache_stats)
                   for _ in range(self.workers)]
        return [future.result() for future in futures]

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent process pool, created on first use.

        The pool outlives individual batches: worker processes keep
        their own process-wide plan caches warm across ``run_batch``
        calls, and the warm-start initializer points those caches at
        ``cache_dir`` when one is configured.
        """
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_warm_worker, initargs=(self.cache_dir,),
            )
        return self._process_pool

    def close(self) -> None:
        """Shut down the persistent process pool (if one was started)."""
        if self._process_pool is not None:
            self._process_pool.shutdown()
            self._process_pool = None

    def __enter__(self) -> "CountingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def default_workers() -> int:
    """A sensible worker count: ``REPRO_SERVICE_WORKERS`` or the CPU count.

    An unparseable value warns once (see :mod:`repro.envknobs`) and
    falls back to the CPU count rather than silently ignoring the knob.
    """
    configured = env_int("REPRO_SERVICE_WORKERS")
    if configured is not None:
        return max(1, configured)
    return os.cpu_count() or 1
