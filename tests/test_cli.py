"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, load_database, main


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(json.dumps({
        "r": [[1, 2], [3, 4], [1, 4]],
        "s": [[2, 9], [4, 9]],
    }))
    return str(path)


class TestLoadDatabase:
    def test_loads_relations(self, db_file):
        db = load_database(db_file)
        assert len(db["r"]) == 3
        assert db["s"].arity == 2

    def test_nested_arrays_frozen(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(json.dumps({"r": [[[1, 2], 3]]}))
        db = load_database(str(path))
        assert ((1, 2), 3) in db["r"]

    def test_empty_relations_skipped(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(json.dumps({"r": [[1]], "empty": []}))
        db = load_database(str(path))
        assert "empty" not in db


class TestCountCommand:
    def test_count(self, db_file, capsys):
        code = main(["count", "ans(A) :- r(A, B), s(B, C)", db_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "count    : 2" in out
        assert "strategy" in out

    def test_forced_method(self, db_file, capsys):
        code = main(["count", "ans(A) :- r(A, B), s(B, C)", db_file,
                     "--method", "brute_force"])
        assert code == 0
        assert "brute_force" in capsys.readouterr().out

    def test_missing_file_errors(self, capsys):
        code = main(["count", "ans(A) :- r(A, B)", "/nonexistent.json"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_query_errors(self, db_file, capsys):
        code = main(["count", "not a query", db_file])
        assert code == 1


class TestAnalyzeCommand:
    def test_analyze_output(self, capsys):
        code = main(["analyze", "ans(A, C) :- r(A, B), s(B, C)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "frontier hypergraph: {A,C}" in out
        assert "#-hypertree width  : 2" in out
        assert "quantified starsize: 2" in out

    def test_analyze_width_cap(self, capsys):
        code = main(["analyze",
                     "ans(X0,X1,X2,X3) :- r(X0,Y1,Y2,Y3), s(Y0,Y1,Y2,Y3), "
                     "w1(X1,Y1), w2(X2,Y2), w3(X3,Y3)",
                     "--max-width", "2"])
        assert code == 0
        assert "> 2" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestUcqCommand:
    def test_count_union(self, db_file, capsys):
        assert main(["ucq", "ans(A) :- r(A,B) ; ans(A) :- s(A,C)",
                     db_file]) == 0
        out = capsys.readouterr().out
        assert "disjuncts        : 2" in out
        # r-answers {1, 3} union s-answers {2, 4}.
        assert "count            : 4" in out

    def test_subsumption_reported(self, db_file, capsys):
        assert main(["ucq", "ans(A) :- r(A,B) ; ans(A) :- r(A,C)",
                     db_file]) == 0
        out = capsys.readouterr().out
        assert "after subsumption: 1" in out

    def test_bad_union_errors(self, db_file, capsys):
        assert main(["ucq", "ans(A) :- r(A,B) ; ans(B) :- r(A,B)",
                     db_file]) == 1
        assert "error" in capsys.readouterr().err


class TestSampleCommand:
    def test_samples_printed(self, db_file, capsys):
        assert main(["sample", "ans(A,C) :- r(A,B), s(B,C)", db_file,
                     "-k", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "answers :" in out
        assert "sample 0:" in out

    def test_empty_answer_set_prints_zero(self, tmp_path, capsys):
        import json as _json

        path = tmp_path / "empty.json"
        path.write_text(_json.dumps({"r": [[1, 2]], "s": [[7, 9]]}))
        assert main(["sample", "ans(A,C) :- r(A,B), s(B,C)",
                     str(path)]) == 0
        out = capsys.readouterr().out
        assert "answers : 0" in out
        assert "sample" not in out.replace("answers", "")


class TestFaqCommand:
    def test_report_printed(self, db_file, capsys):
        assert main(["faq", "ans(A,C) :- r(A,B), s(B,C)", db_file]) == 0
        out = capsys.readouterr().out
        assert "count          :" in out
        assert "eliminate" in out
        assert "( or)" in out and "(sum)" in out


class TestSuggestCommand:
    def test_profile_and_candidates(self, db_file, capsys):
        assert main(["suggest", "ans(A) :- r(A,B), s(B,C)", db_file]) == 0
        out = capsys.readouterr().out
        assert "degree profile:" in out
        assert "pseudo-free candidates" in out
        assert "(existential)" in out


class TestExplainCommand:
    def test_without_database(self, capsys):
        assert main(["explain", "ans(A,C) :- r(A,B), s(B,C)"]) == 0
        out = capsys.readouterr().out
        assert "strategy          : structural" in out
        assert "decomposition" in out

    def test_with_database_enables_hybrid_probe(self, db_file, capsys):
        assert main(["explain", "ans(A) :- r(A,B), s(B,C)", db_file]) == 0
        out = capsys.readouterr().out
        assert "strategy" in out

    def test_width_cap_reported(self, capsys):
        assert main(["explain", "ans(A,C) :- r(A,B), s(B,C)",
                     "--max-width", "3"]) == 0
        assert "structural" in capsys.readouterr().out
