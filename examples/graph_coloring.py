#!/usr/bin/env python3
"""Counting CSP solutions: proper graph colorings as #CQ.

The paper's problem is equivalently phrased for constraint satisfaction:
counting CQ answers is counting CSP solutions w.r.t. a set of output
variables.  The classic instance is counting proper k-colorings: one
variable per graph vertex, one "different colors" constraint per edge.

On a tree-shaped graph the query is acyclic and the join-tree DP counts
colorings in milliseconds where enumeration would list exponentially many;
projecting onto a few output variables (count colorings *of the boundary*,
existentially quantifying the interior) exercises the #-decomposition
machinery — exactly the paper's setting.

Run:  python examples/graph_coloring.py
"""

import time
from itertools import permutations

from repro.counting import count_answers, count_brute_force
from repro.db import Database, Relation
from repro.query import Atom, ConjunctiveQuery, Variable


def coloring_query(edges, free_vertices=None):
    """The CQ whose answers are proper colorings (projected if asked)."""
    atoms = [
        Atom("ne", (Variable(f"V{u}"), Variable(f"V{v}")))
        for u, v in edges
    ]
    variables = {v for atom in atoms for v in atom.variables}
    if free_vertices is None:
        free = variables
    else:
        free = {Variable(f"V{v}") for v in free_vertices}
    return ConjunctiveQuery(frozenset(atoms), frozenset(free),
                            name="coloring")


def colors_database(k: int) -> Database:
    """The inequality relation over k colors."""
    rows = {(a, b) for a in range(k) for b in range(k) if a != b}
    return Database([Relation("ne", 2, rows)])


def caterpillar(n: int):
    """A path 0-1-...-n with a leg hanging off every spine vertex."""
    edges = [(i, i + 1) for i in range(n)]
    edges += [(i, n + 1 + i) for i in range(n + 1)]
    return edges


def main() -> None:
    k = 3
    database = colors_database(k)

    print(f"-- counting proper {k}-colorings of caterpillar trees --")
    for n in (4, 8, 16):
        query = coloring_query(caterpillar(n))
        start = time.perf_counter()
        result = count_answers(query, database)
        elapsed = time.perf_counter() - start
        # trees have k * (k-1)^(V-1) proper colorings
        vertices = len(query.variables)
        expected = k * (k - 1) ** (vertices - 1)
        assert result.count == expected
        print(f"  spine {n:2d} ({vertices:2d} vertices): "
              f"{result.count:12d} colorings via {result.strategy} "
              f"({elapsed * 1e3:6.1f} ms)")
    print()

    print("-- projected counting: boundary colorings only --")
    # Count the distinct colorings of the two spine endpoints, hiding the
    # rest existentially: the answers are the endpoint pairs extendable to
    # a full proper coloring.
    edges = caterpillar(6)
    query = coloring_query(edges, free_vertices=[0, 6])
    result = count_answers(query, database)
    print(f"  endpoint color pairs: {result.count} "
          f"(strategy: {result.strategy})")
    assert result.count == count_brute_force(query, database)
    # every ordered pair of (not necessarily distinct) colors extends
    assert result.count == k * k
    print()

    print("-- a cyclic CSP: coloring the 5-cycle --")
    pentagon = [(i, (i + 1) % 5) for i in range(5)]
    query = coloring_query(pentagon)
    result = count_answers(query, database)
    # chromatic polynomial of C5 at k=3: (k-1)^5 + (k-1)*(-1)^5 = 32 - 2
    assert result.count == 30
    print(f"  C5 with 3 colors: {result.count} colorings "
          f"via {result.strategy} ({result.details})")


if __name__ == "__main__":
    main()
