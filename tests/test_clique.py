"""Unit tests for the #Clique reduction machinery (Section 5)."""

import math

from repro.counting.brute_force import count_brute_force
from repro.counting.starsize import quantified_star_size
from repro.decomposition.treedec import exact_treewidth
from repro.hypergraph.frontier import frontier_size
from repro.reductions.clique import (
    clique_instance,
    clique_query,
    count_cliques_brute,
    count_cliques_via_cq,
    graph_database,
    path_query,
    random_graph,
    star_frontier_instance,
    star_frontier_query,
)


class TestGraphs:
    def test_random_graph_symmetric(self):
        g = random_graph(8, 0.5, seed=1)
        for u, neighbours in g.items():
            for v in neighbours:
                assert u in g[v]
                assert u != v

    def test_clique_counts_on_complete_graph(self):
        g = {u: {v for v in range(5) if v != u} for u in range(5)}
        assert count_cliques_brute(g, 3) == math.comb(5, 3)
        assert count_cliques_brute(g, 5) == 1

    def test_clique_counts_on_empty_graph(self):
        g = {u: set() for u in range(5)}
        assert count_cliques_brute(g, 2) == 0


class TestCliqueQuery:
    def test_structure(self):
        q = clique_query(4)
        assert len(q.atoms) == 6
        assert q.is_quantifier_free()

    def test_treewidth_is_k_minus_1(self):
        for k in (2, 3, 4):
            assert exact_treewidth(clique_query(k).hypergraph()) == k - 1

    def test_instance_counts_ordered_cliques(self):
        g = random_graph(7, 0.6, seed=3)
        query, database = clique_instance(g, 3)
        assert count_brute_force(query, database) == \
            6 * count_cliques_brute(g, 3)

    def test_reduction_divides_by_factorial(self):
        g = random_graph(9, 0.4, seed=5)
        for k in (2, 3):
            assert count_cliques_via_cq(g, k) == count_cliques_brute(g, k)

    def test_reduction_through_engine_oracle(self):
        from repro.counting.engine import count_answers

        g = random_graph(7, 0.5, seed=8)
        oracle = lambda q, d: count_answers(q, d, max_width=2).count
        assert count_cliques_via_cq(g, 2, oracle=oracle) == \
            count_cliques_brute(g, 2)

    def test_graph_database_symmetric_rows(self):
        g = random_graph(5, 0.5, seed=2)
        db = graph_database(g)
        for (u, v) in db["e"]:
            assert (v, u) in db["e"]


class TestGadgetFamilies:
    def test_star_gadget_parameters(self):
        for k in (2, 3, 4):
            q = star_frontier_query(k)
            assert quantified_star_size(q) == k
            assert frontier_size(q) == k

    def test_star_instance_counts(self):
        g = random_graph(6, 0.5, seed=7)
        query, database = star_frontier_instance(g, 2)
        # every answer is a pair of vertices incident to a common edge
        count = count_brute_force(query, database)
        edges = sum(len(ns) for ns in g.values()) // 2
        assert count >= edges  # at least the ordered endpoints themselves

    def test_path_query_is_easy(self):
        for k in (2, 5, 8):
            q = path_query(k)
            assert exact_treewidth(q.hypergraph()) <= 1
            assert q.is_quantifier_free()
