"""Columnar-backend benchmark: vectorized frames vs the tuple kernel.

The acceptance bar of ISSUE 9, asserted here and recorded into
``BENCH_kernel.json`` by ``run_all.py``:

* **columnar >= 2x** — executing a linked
  :class:`~repro.counting.compile.CompiledProgram` against a columnar
  database (code-space scans, dense-table semijoins, staged frames,
  ``KeyAggregate`` DP) must beat the same program against the same data
  on the tuple backend by at least 2x on the maintained-stream hot-loop
  shapes: the ``bench_session`` star and the ``bench_reduced``
  quantified star and cyclic triangle.  The bar is the *geometric mean*
  across the three workloads, with every individual workload required
  to beat the tuple path at all — a single spectacular shape must not
  paper over a regression on another.

Both sides run the identical compiled program on content-equal
databases; only the relation backend differs, so the measurement
isolates exactly what the columnar tier buys.  Both paths are measured
warm (plans lowered, dictionaries encoded, caches primed outside the
timed loop — the hot-loop shape: many counts, one database).  Counts
are cross-checked bit-identical before any timing is trusted.

Standalone usage (CI artifact)::

    PYTHONPATH=src python benchmarks/bench_columnar.py -o bench-columnar.json
"""

from __future__ import annotations

import time

import bench_compiled

#: Repeated warm executions per measured loop and best-of repetitions.
LOOP_ROUNDS = 20
REPEAT = 3

COLUMNAR_BAR = 2.0


def _best(fn, repeat: int = REPEAT) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _workloads():
    """``(name, tuple database, columnar database, executable)`` —
    the compiled benchmark's hot-loop shapes, on both backends."""
    for name, _query, database, executable, _interp in \
            bench_compiled._workloads():
        yield (name, database, database.with_backend("columnar"),
               executable)


def measure() -> dict:
    from repro.db.columnar import columnar_kernels_available

    assert columnar_kernels_available(), \
        "numpy unavailable: the columnar benchmark cannot run"
    workloads = {}
    speedups = []
    for name, tuple_db, columnar_db, executable in _workloads():
        columnar_count = executable.count(columnar_db)
        tuple_count = executable.count(tuple_db)
        assert columnar_count == tuple_count, (
            name, columnar_count, tuple_count
        )
        columnar_seconds = _best(
            lambda: [executable.count(columnar_db)
                     for _ in range(LOOP_ROUNDS)]
        )
        tuple_seconds = _best(
            lambda: [executable.count(tuple_db)
                     for _ in range(LOOP_ROUNDS)]
        )
        speedup = round(tuple_seconds / max(columnar_seconds, 1e-9), 2)
        speedups.append(speedup)
        workloads[name] = {
            "count": columnar_count,
            "columnar_seconds": round(columnar_seconds, 4),
            "tuple_seconds": round(tuple_seconds, 4),
            "speedup": speedup,
        }
    geomean = 1.0
    for speedup in speedups:
        geomean *= speedup
    geomean = round(geomean ** (1.0 / len(speedups)), 2)
    return {
        "workloads": workloads,
        "loop_rounds": LOOP_ROUNDS,
        "columnar_speedup_geomean": geomean,
        "meets_columnar_2x_bar": (geomean >= COLUMNAR_BAR
                                  and all(s > 1.0 for s in speedups)),
    }


def snapshot() -> dict:
    return measure()


def test_columnar_backend_meets_the_2x_bar():
    result = measure()
    assert result["meets_columnar_2x_bar"], result


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None)
    args = parser.parse_args(argv)
    result = measure()
    for name, numbers in result["workloads"].items():
        print(f"[bench-columnar] {name}: columnar "
              f"{numbers['columnar_seconds']}s vs tuple "
              f"{numbers['tuple_seconds']}s -> "
              f"{numbers['speedup']}x")
    print(f"[bench-columnar] geomean "
          f"{result['columnar_speedup_geomean']}x "
          f"(bar: >= {COLUMNAR_BAR}x)")
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"[bench-columnar] -> {args.output}")
    return 0 if result["meets_columnar_2x_bar"] else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
