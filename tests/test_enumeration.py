"""Unit tests for polynomial-delay answer enumeration ([GS13])."""

import pytest

from repro.counting.brute_force import answers as brute_answers
from repro.counting.enumeration import enumerate_answers, iter_answers
from repro.db import Database
from repro.exceptions import DecompositionNotFoundError
from repro.query import parse_query
from repro.workloads import q0, random_instance, workforce_database


def _as_row_set(answer_dicts, free):
    ordered = sorted(free, key=lambda v: v.name)
    return {tuple(a[v] for v in ordered) for a in answer_dicts}


class TestEnumeration:
    def test_matches_brute_force_on_q0(self):
        query = q0()
        database = workforce_database(seed=21)
        listed = enumerate_answers(query, database)
        expected = brute_answers(query, database)
        assert _as_row_set(listed, query.free_variables) == expected.rows
        assert len(listed) == len(expected)

    def test_no_duplicates(self):
        query = parse_query("ans(A) :- r(A, B)")
        database = Database.from_dict({"r": [(1, 2), (1, 3), (2, 2)]})
        listed = enumerate_answers(query, database)
        assert len(listed) == 2

    def test_limit_stops_early(self):
        query = parse_query("ans(A) :- r(A, B)")
        database = Database.from_dict({"r": [(i, 0) for i in range(100)]})
        assert len(enumerate_answers(query, database, limit=5)) == 5

    def test_empty_answer_set(self):
        query = parse_query("ans(A) :- r(A, B), s(B, C)")
        database = Database.from_dict({"r": [(1, 2)], "s": [(9, 9)]})
        assert enumerate_answers(query, database) == []

    def test_iterator_is_lazy(self):
        query = parse_query("ans(A) :- r(A, B)")
        database = Database.from_dict({"r": [(i, 0) for i in range(50)]})
        iterator = iter_answers(query, database)
        first = next(iterator)
        assert set(first) == query.free_variables

    def test_boolean_query(self):
        query = parse_query("ans() :- r(A, B)")
        database = Database.from_dict({"r": [(1, 2)]})
        listed = enumerate_answers(query, database)
        assert listed == [{}]

    def test_raises_beyond_width(self):
        from repro.workloads import q2_acyclic, d2_database

        with pytest.raises(DecompositionNotFoundError):
            enumerate_answers(q2_acyclic(3), d2_database(3), max_width=2)

    def test_random_instances(self):
        checked = 0
        for seed in range(12):
            query, database = random_instance(seed=seed + 500)
            try:
                listed = enumerate_answers(query, database, max_width=2)
            except DecompositionNotFoundError:
                continue
            expected = brute_answers(query, database)
            assert _as_row_set(listed, query.free_variables) == expected.rows
            assert len(listed) == len(expected)
            checked += 1
        assert checked >= 6
