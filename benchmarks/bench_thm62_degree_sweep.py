"""E11 — Theorem 6.2: the Figure 13 algorithm's cost tracks the degree h.

Paper claims: count(Q, D) is solvable in O(|vertices| * m^{2k} * 4^h) where
h = bound(D, HD).  We sweep h on Q^h_2/D_2 (where the width-1 bound equals
2^h by construction) and, separately, sweep the data degree at fixed query
on a path query with controlled fan-out.  Timings across the sweep exhibit
the exponential-in-h (and only-in-h) growth.
"""

import pytest

from repro.counting.brute_force import count_brute_force
from repro.counting.sharp_relations import count_via_hypertree
from repro.db import Database
from repro.decomposition.degree import degree_bound
from repro.decomposition.ghd import find_ghd_join_tree
from repro.decomposition.hypertree import hypertree_from_join_tree
from repro.query import parse_query
from repro.workloads import d2_database, q2_acyclic


@pytest.mark.benchmark(group="thm62-h-sweep")
@pytest.mark.parametrize("h", [1, 2, 3, 4])
def test_counter_family_degree_sweep(benchmark, h):
    query, database = q2_acyclic(h), d2_database(h)
    tree = find_ghd_join_tree(query.hypergraph(), 1)
    decomposition = hypertree_from_join_tree(tree, query, max_cover=1)
    assert degree_bound(decomposition, database,
                        query.free_variables) == 2 ** h
    count = benchmark(count_via_hypertree, query, database, decomposition)
    assert count == 2 ** h


def _fanout_instance(degree: int):
    """ans(A, C) :- r(A, B), s(B, C): each A has `degree` B-extensions.

    Both endpoints are free and ``s`` is a bijection, so every bag of the
    width-1 decomposition projects onto a free variable: the bag over
    ``r`` has degree exactly *degree* (the fan-out of A) and the bag over
    ``s`` has degree 1 — ``bound(D, HD) = degree`` by Definition 6.1.
    A vertex without free variables would instead contribute its full
    cardinality, the paper's Figure 12 situation covered by the other
    sweep in this module.
    """
    query = parse_query("ans(A, C) :- r(A, B), s(B, C)")
    n_keys = 12
    r_rows = [(a, a * degree + j) for a in range(n_keys)
              for j in range(degree)]
    s_rows = [(b, b) for _, b in r_rows]
    database = Database.from_dict({"r": r_rows, "s": s_rows})
    return query, database


@pytest.mark.benchmark(group="thm62-data-sweep")
@pytest.mark.parametrize("degree", [1, 4, 16])
def test_data_degree_sweep(benchmark, degree):
    query, database = _fanout_instance(degree)
    tree = find_ghd_join_tree(query.hypergraph(), 1)
    decomposition = hypertree_from_join_tree(tree, query, max_cover=1)
    measured = degree_bound(decomposition, database, query.free_variables)
    assert measured == degree
    count = benchmark(count_via_hypertree, query, database, decomposition)
    assert count == count_brute_force(query, database)
