#!/usr/bin/env python3
"""The hardness frontier, made executable (Section 5 / Theorem 1.6).

The trichotomy says counting is polynomial exactly for bounded #-hypertree
width; beyond it, #CQ is as hard as counting cliques.  This script runs the
reduction in both directions:

1. #Clique solved through the #CQ oracle (the clique query family whose
   treewidth grows with k) — watch the cost climb with k;
2. the tractable control family (paths) staying flat;
3. the Lemma 5.10 interpolation reduction: counting answers of
   fullcolor(Q) using only an oracle for Q.

Run:  python examples/clique_counting.py
"""

import random
import time

from repro.counting import count_brute_force
from repro.decomposition.treedec import exact_treewidth
from repro.db import Database, Relation
from repro.query import color_symbol, fullcolor, parse_query
from repro.reductions import (
    count_cliques_brute,
    count_cliques_via_cq,
    count_fullcolor_via_oracle,
    clique_query,
    path_query,
    graph_database,
    random_graph,
)


def main() -> None:
    graph = random_graph(12, 0.5, seed=7)
    print("-- #Clique through #CQ (the hard family) --")
    for k in (2, 3, 4):
        query = clique_query(k)
        width = exact_treewidth(query.hypergraph())
        start = time.perf_counter()
        via_cq = count_cliques_via_cq(graph, k)
        elapsed = time.perf_counter() - start
        direct = count_cliques_brute(graph, k)
        assert via_cq == direct
        print(f"  k={k}: treewidth={width}  #cliques={via_cq:5d}  "
              f"({elapsed * 1e3:7.1f} ms)")
    print()

    print("-- the tractable control family (paths, treewidth 1) --")
    from repro.counting import count_answers

    database = graph_database(graph)
    for k in (2, 4, 6):
        query = path_query(k)
        start = time.perf_counter()
        result = count_answers(query, database)  # acyclic join-tree DP
        elapsed = time.perf_counter() - start
        print(f"  path length {k}: {result.count:7d} walks via "
              f"{result.strategy}  ({elapsed * 1e3:7.1f} ms)")
    print()

    print("-- Lemma 5.10: fullcolor(Q) counted through an oracle for Q --")
    query = parse_query("ans(A, C) :- r(A, B), s(B, C)")
    rng = random.Random(3)
    relations = [
        Relation("r", 2, {(rng.randrange(5), rng.randrange(5))
                          for _ in range(10)}),
        Relation("s", 2, {(rng.randrange(5), rng.randrange(5))
                          for _ in range(10)}),
    ]
    for variable in sorted(query.variables, key=lambda v: v.name):
        domain = rng.sample(range(5), 3)
        relations.append(Relation(color_symbol(variable), 1,
                                  {(x,) for x in domain}))
    database = Database(relations)

    oracle_calls = []

    def oracle(q, d):
        oracle_calls.append(1)
        return count_brute_force(q, d)

    via_reduction = count_fullcolor_via_oracle(query, database, oracle)
    direct = count_brute_force(fullcolor(query), database)
    assert via_reduction == direct
    print(f"  |fullcolor(Q)(B)| = {via_reduction} "
          f"(direct: {direct}), using {len(oracle_calls)} oracle calls")
    print("  (inclusion-exclusion over free subsets x Vandermonde "
          "interpolation)")


if __name__ == "__main__":
    main()
