"""Unit tests for repro.db.relation."""

import pytest

from repro.db.relation import Relation
from repro.exceptions import ArityMismatchError


class TestRelation:
    def test_construction(self):
        r = Relation("r", 2, [(1, 2), (3, 4), (1, 2)])
        assert len(r) == 2  # duplicates merged
        assert (1, 2) in r
        assert (9, 9) not in r

    def test_arity_enforced(self):
        with pytest.raises(ArityMismatchError):
            Relation("r", 2, [(1, 2, 3)])

    def test_rows_are_frozen(self):
        r = Relation("r", 1, [(1,)])
        assert isinstance(r.rows, frozenset)

    def test_iteration(self):
        r = Relation("r", 1, [(1,), (2,)])
        assert sorted(r) == [(1,), (2,)]

    def test_equality_and_hash(self):
        assert Relation("r", 2, [(1, 2)]) == Relation("r", 2, [(1, 2)])
        assert Relation("r", 2, [(1, 2)]) != Relation("s", 2, [(1, 2)])
        assert Relation("r", 2, [(1, 2)]) != Relation("r", 2, [(2, 1)])
        assert hash(Relation("r", 2, [(1, 2)])) == hash(Relation("r", 2, [(1, 2)]))

    def test_union(self):
        r = Relation("r", 1, [(1,)]).union([(2,)])
        assert len(r) == 2

    def test_restrict(self):
        r = Relation("r", 2, [(1, 2), (3, 4)])
        kept = r.restrict(lambda row: row[0] == 1)
        assert kept.rows == frozenset({(1, 2)})

    def test_renamed(self):
        r = Relation("r", 1, [(1,)]).renamed("s")
        assert r.name == "s"
        assert len(r) == 1

    def test_active_domain(self):
        r = Relation("r", 2, [(1, 2), (2, 3)])
        assert r.active_domain() == frozenset({1, 2, 3})

    def test_empty_relation(self):
        r = Relation("r", 3)
        assert len(r) == 0
        assert r.active_domain() == frozenset()

    def test_lists_coerced_to_tuples(self):
        r = Relation("r", 2, [[1, 2]])
        assert (1, 2) in r
