"""The columnar backend: dictionary-encoded relations and their kernels.

Four layers, tested bottom-up:

* the :class:`~repro.db.columnar.ColumnarRelation` contract — rows,
  membership, equality across backends, indexes, statistics, renamed
  alias sharing, pickling, arity-0 and numeric-equality edge cases;
* backend selection — ``make_relation`` / ``Database.from_dict`` /
  ``with_backend`` / ``$REPRO_BACKEND`` / ``set_default_backend``;
* the vectorized algebra operators — join / semijoin / projection
  counts agree with the tuple path on random inputs, in every backend
  pairing (columnar, tuple, mixed);
* the differential harness — ``columnar == tuple == brute force`` for
  the full engine (auto and compiled) on a random corpus, and through
  the sharded session in every shard-worker flavor including ``tcp``
  (which also exercises pickling through process pools and the wire).
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.counting.brute_force import count_brute_force
from repro.counting.engine import count_answers
from repro.db import Database
from repro.db.algebra import (
    relation_join,
    relation_project_counts,
    relation_semijoin,
)
from repro.db.columnar import (
    BACKENDS,
    ColumnarRelation,
    columnar_kernels_available,
    database_backend,
    default_backend,
    make_relation,
    set_default_backend,
)
from repro.db.relation import Relation
from repro.exceptions import ArityMismatchError, SchemaError
from repro.query import parse_query

ROWS = [(1, "a"), (1, "b"), (2, "a"), (3, "c"), (1, "a")]  # one duplicate


def pair(rows=ROWS, arity=2):
    """The same contents on both backends."""
    return (Relation("r", arity, rows), ColumnarRelation("r", arity, rows))


# ----------------------------------------------------------------------
# The Relation contract
# ----------------------------------------------------------------------
class TestColumnarRelationContract:
    def test_rows_len_iter_match_tuple_backend(self):
        tuple_rel, columnar = pair()
        assert columnar.rows == tuple_rel.rows
        assert len(columnar) == len(tuple_rel) == 4  # duplicate collapsed
        assert set(columnar) == set(tuple_rel)

    def test_membership(self):
        _, columnar = pair()
        assert (1, "a") in columnar
        assert (9, "a") not in columnar
        assert (1, "zzz") not in columnar
        assert (1,) not in columnar  # wrong arity

    def test_equality_and_hash_cross_backend(self):
        tuple_rel, columnar = pair()
        assert columnar == tuple_rel
        assert tuple_rel == columnar
        assert hash(columnar) == hash(tuple_rel)
        assert columnar != ColumnarRelation("r", 2, [(1, "a")])

    def test_arity_mismatch_raises(self):
        with pytest.raises(ArityMismatchError):
            ColumnarRelation("r", 2, [(1, 2, 3)])

    def test_index_on_matches_tuple_backend(self):
        tuple_rel, columnar = pair()
        assert columnar.index_on((0,)) == tuple_rel.index_on((0,))
        assert columnar.index_on((1, 0)) == tuple_rel.index_on((1, 0))

    def test_statistics_distinct_is_dictionary_size(self):
        tuple_rel, columnar = pair()
        stats = columnar.statistics()
        for position in range(2):
            assert stats.distinct(position) == \
                tuple_rel.statistics().distinct(position)
        with pytest.raises(IndexError):
            stats.distinct(2)

    def test_renamed_alias_shares_contents_and_caches(self):
        _, columnar = pair()
        alias = columnar.renamed("s")
        assert isinstance(alias, ColumnarRelation)
        assert alias.name == "s" and alias.rows == columnar.rows
        assert alias is columnar.renamed("s")  # alias cache
        assert alias._kcache is columnar._kcache  # kernels see one cache
        from repro.counting.plan_cache import relation_content_tag
        assert relation_content_tag(alias) == \
            relation_content_tag(columnar)

    def test_active_domain_cached_and_shared_with_aliases(self):
        _, columnar = pair()
        domain = columnar.active_domain()
        assert domain == frozenset({1, 2, 3, "a", "b", "c"})
        assert columnar.active_domain() is domain
        assert columnar.renamed("s").active_domain() is domain

    def test_pickle_roundtrip_preserves_type_and_rows(self):
        _, columnar = pair()
        restored = pickle.loads(pickle.dumps(columnar))
        assert type(restored) is ColumnarRelation
        assert restored == columnar
        assert restored.statistics().distinct(0) == 3

    def test_union_and_restrict_stay_columnar(self):
        _, columnar = pair()
        grown = columnar.union([(9, "z")])
        assert type(grown) is ColumnarRelation
        assert (9, "z") in grown and len(grown) == 5
        shrunk = columnar.restrict(lambda row: row[0] == 1)
        assert type(shrunk) is ColumnarRelation
        assert shrunk.rows == frozenset({(1, "a"), (1, "b")})

    def test_arity_zero(self):
        empty = ColumnarRelation("t", 0, [])
        truth = ColumnarRelation("t", 0, [()])
        assert len(empty) == 0 and empty.rows == frozenset()
        assert len(truth) == 1 and truth.rows == frozenset({()})
        assert pickle.loads(pickle.dumps(truth)) == truth

    def test_numeric_equality_matches_python_semantics(self):
        # 1 == 1.0 in Python, so both backends must treat them as one
        # value; dictionary encoding uses dict lookup, which agrees.
        tuple_rel = Relation("r", 1, [(1,)])
        columnar = ColumnarRelation("r", 1, [(1,)])
        assert ((1.0,) in columnar) == ((1.0,) in tuple_rel) is True
        both = ColumnarRelation("r", 1, [(1,), (1.0,)])
        assert len(both) == 1


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_make_relation_dispatches(self):
        assert type(make_relation("r", 1, [(1,)], backend="tuple")) \
            is Relation
        assert type(make_relation("r", 1, [(1,)], backend="columnar")) \
            is ColumnarRelation
        with pytest.raises(ValueError, match="arrow"):
            make_relation("r", 1, [(1,)], backend="arrow")

    def test_set_default_backend_forces_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        try:
            set_default_backend("columnar")
            assert default_backend() == "columnar"
            assert type(make_relation("r", 1, [(1,)])) is ColumnarRelation
        finally:
            set_default_backend(None)
        assert default_backend() == "tuple"
        with pytest.raises(ValueError):
            set_default_backend("arrow")

    def test_database_backend_classification(self):
        columnar_db = Database.from_dict({"r": [(1, 2)]},
                                         backend="columnar")
        tuple_db = Database.from_dict({"r": [(1, 2)]}, backend="tuple")
        mixed = tuple_db.with_relation(
            ColumnarRelation("s", 1, [(5,)])
        )
        assert database_backend(columnar_db) == "columnar"
        assert database_backend(tuple_db) == "tuple"
        assert database_backend(mixed) == "tuple"
        assert database_backend(Database()) == "tuple"

    def test_with_backend_converts_and_reuses(self):
        tuple_db = Database.from_dict({"r": [(1, 2)], "s": [(2, 3)]})
        columnar_db = tuple_db.with_backend("columnar")
        assert database_backend(columnar_db) == "columnar"
        assert columnar_db == tuple_db  # contents unchanged
        again = columnar_db.with_backend("columnar")
        assert again["r"] is columnar_db["r"]  # same-backend reuse
        back = columnar_db.with_backend("tuple")
        assert database_backend(back) == "tuple" and back == tuple_db

    def test_backends_registry_is_the_dispatch_surface(self):
        assert BACKENDS == ("tuple", "columnar")


# ----------------------------------------------------------------------
# Vectorized algebra operators
# ----------------------------------------------------------------------
needs_kernels = pytest.mark.skipif(
    not columnar_kernels_available(),
    reason="numpy unavailable: no vectorized kernels in this build",
)


def random_rows(rng, arity, n, domain):
    return {tuple(rng.randrange(domain) for _ in range(arity))
            for _ in range(n)}


@needs_kernels
class TestVectorizedAlgebra:
    @pytest.mark.parametrize("seed", range(6))
    def test_join_parity_across_backend_pairings(self, seed):
        rng = random.Random(seed)
        left_rows = random_rows(rng, 2, 30, 8)
        right_rows = random_rows(rng, 2, 30, 8)
        on = ((1, 0),)
        backends = {
            "tuple": (Relation("l", 2, left_rows),
                      Relation("r", 2, right_rows)),
            "columnar": (ColumnarRelation("l", 2, left_rows),
                         ColumnarRelation("r", 2, right_rows)),
            "mixed": (ColumnarRelation("l", 2, left_rows),
                      Relation("r", 2, right_rows)),
        }
        results = {label: relation_join(left, right, on)
                   for label, (left, right) in backends.items()}
        rows = {label: result.rows for label, result in results.items()}
        assert rows["columnar"] == rows["tuple"] == rows["mixed"]
        assert type(results["columnar"]) is ColumnarRelation
        assert type(results["tuple"]) is Relation
        # A mixed pair takes the tuple path; the result keeps the
        # *left* operand's backend.
        assert type(results["mixed"]) is ColumnarRelation

    @pytest.mark.parametrize("seed", range(6))
    def test_semijoin_parity_and_identity_shortcut(self, seed):
        rng = random.Random(100 + seed)
        left_rows = random_rows(rng, 2, 25, 6)
        right_rows = random_rows(rng, 1, 10, 6)
        tuple_left = Relation("l", 2, left_rows)
        columnar_left = ColumnarRelation("l", 2, left_rows)
        tuple_right = Relation("r", 1, right_rows)
        columnar_right = ColumnarRelation("r", 1, right_rows)
        expected = relation_semijoin(tuple_left, tuple_right, ((0, 0),))
        filtered = relation_semijoin(columnar_left, columnar_right,
                                     ((0, 0),))
        assert filtered.rows == expected.rows
        # Unfiltered: the operand itself comes back, caches intact.
        everything = ColumnarRelation("all", 1, [(v,) for v in range(6)])
        assert relation_semijoin(columnar_left, everything,
                                 ((0, 0),)) is columnar_left

    def test_semijoin_requires_key_positions(self):
        left, right = pair()
        with pytest.raises(SchemaError):
            relation_semijoin(right, left, ())

    @pytest.mark.parametrize("seed", range(6))
    def test_project_counts_parity(self, seed):
        rng = random.Random(200 + seed)
        rows = random_rows(rng, 3, 40, 5)
        tuple_rel = Relation("r", 3, rows)
        columnar = ColumnarRelation("r", 3, rows)
        for positions in ((0,), (2, 0), (1, 1), ()):
            assert relation_project_counts(columnar, positions) == \
                relation_project_counts(tuple_rel, positions), positions

    def test_join_with_disjoint_dictionaries_is_empty(self):
        left = ColumnarRelation("l", 1, [(1,), (2,)])
        right = ColumnarRelation("r", 1, [("x",), ("y",)])
        assert len(relation_join(left, right, ((0, 0),))) == 0


# ----------------------------------------------------------------------
# Differential: columnar == tuple == brute force, through the engine
# ----------------------------------------------------------------------
QUERIES = [
    parse_query("path(X, Z) :- r(X, Y), s(Y, Z)"),
    parse_query("tri(X) :- e(X, Y), e(Y, Z), e(Z, X)"),
    parse_query("star(X) :- r(X, Y), s(X, Z), e(X, W)"),
    parse_query("pin(X) :- r(X, 1), e(X, Y)"),
    parse_query("loop(X) :- e(X, X), r(X, Y)"),
]


def random_corpus_database(seed: int) -> Database:
    rng = random.Random(seed)
    return Database.from_dict({
        "r": random_rows(rng, 2, 20, 6),
        "s": random_rows(rng, 2, 20, 6),
        "e": random_rows(rng, 2, 25, 6),
    }, backend="tuple")


class TestDifferentialBackendParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_engine_counts_agree_with_brute_force(self, seed,
                                                  repro_env_sandbox):
        tuple_db = random_corpus_database(seed)
        columnar_db = tuple_db.with_backend("columnar")
        for query in QUERIES:
            expected = count_brute_force(query, tuple_db)
            for method in ("auto", "compiled"):
                for database in (tuple_db, columnar_db):
                    result = count_answers(query, database, method=method)
                    assert result.count == expected, (
                        f"seed {seed}, {query.name}, {method}, "
                        f"{database_backend(database)}"
                    )

    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_backend_database_counts_agree(self, seed):
        tuple_db = random_corpus_database(40 + seed)
        mixed = tuple_db.with_relation(
            ColumnarRelation("e", 2, tuple_db["e"].rows)
        )
        for query in QUERIES:
            assert count_answers(query, mixed).count == \
                count_brute_force(query, tuple_db), query.name


# ----------------------------------------------------------------------
# The sharded session under $REPRO_BACKEND, every shard flavor
# ----------------------------------------------------------------------
class TestShardedBackendParity:
    def streams(self):
        from repro.dynamic import Insert
        from repro.service import AttachDatabase, CountRequest, \
            UpdateRequest

        jobs = []
        for seed in range(3):
            database = random_corpus_database(70 + seed)
            jobs.append(AttachDatabase(f"db{seed}", database))
            for query in QUERIES[:3]:
                jobs.append(CountRequest(query, f"db{seed}",
                                         label=f"{query.name}{seed}"))
            jobs.append(UpdateRequest(f"db{seed}", Insert("r", (99, 1))))
            jobs.append(CountRequest(QUERIES[0], f"db{seed}",
                                     label=f"post{seed}"))
        return [jobs]

    def replay(self, shard_mode, shard_addrs=None):
        from repro.service import MultiWriterSession

        with MultiWriterSession(shards=2, shard_mode=shard_mode,
                                shard_addrs=shard_addrs,
                                maintain=False) as session:
            (results,) = session.run_streams(self.streams())
        return [r.count for r in results if hasattr(r, "count")]

    @pytest.mark.parametrize("shard_mode", ["inline", "thread", "process"])
    def test_columnar_equals_tuple_in_every_worker_flavor(self, shard_mode,
                                                          monkeypatch):
        # The env var (not the module override) is what travels into
        # forked process-mode shard workers; process mode also pickles
        # every columnar database across the pool boundary.
        monkeypatch.setenv("REPRO_BACKEND", "columnar")
        columnar_counts = self.replay(shard_mode)
        monkeypatch.setenv("REPRO_BACKEND", "tuple")
        tuple_counts = self.replay(shard_mode)
        assert columnar_counts == tuple_counts
        assert len(columnar_counts) == 12

    def test_columnar_equals_tuple_over_tcp(self, monkeypatch):
        from repro.service.net import ShardServer

        def over_the_wire():
            with ShardServer(shards=2) as server:
                return self.replay("tcp", shard_addrs=[server.address])

        # The server rebuilds attached databases via database_from_dict,
        # so its process environment decides the resident backend.
        monkeypatch.setenv("REPRO_BACKEND", "columnar")
        columnar_counts = over_the_wire()
        monkeypatch.setenv("REPRO_BACKEND", "tuple")
        tuple_counts = over_the_wire()
        assert columnar_counts == tuple_counts
        assert len(columnar_counts) == 12
