"""Atoms of conjunctive queries.

An atom ``r(u1, ..., uk)`` consists of a relation symbol ``r`` and a list of
terms (variables or constants).  Atoms are immutable and hashable, so the set
``atoms(Q)`` of the paper is representable as a Python ``frozenset``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple

from ..exceptions import QueryError
from .terms import Constant, Term, Variable, variables


@dataclass(frozen=True)
class Atom:
    """An atom ``relation(terms...)``.

    Attributes
    ----------
    relation:
        The relation symbol, a plain string.
    terms:
        The tuple of terms (variables and constants) in positional order.
    """

    relation: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))
        for term in self.terms:
            if not isinstance(term, (Variable, Constant)):
                raise QueryError(
                    f"atom {self.relation}: term {term!r} is neither a "
                    "Variable nor a Constant"
                )

    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.terms)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """Distinct variables of the atom, in first-occurrence order."""
        return variables(self.terms)

    @property
    def variable_set(self) -> frozenset:
        """The set ``vars({atom})`` of the paper."""
        return frozenset(self.variables)

    def constants(self) -> Tuple[Constant, ...]:
        """Distinct constants of the atom, in first-occurrence order."""
        seen = []
        for term in self.terms:
            if isinstance(term, Constant) and term not in seen:
                seen.append(term)
        return tuple(seen)

    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Apply a variable substitution, returning a new atom.

        Variables absent from *mapping* are left untouched; constants are
        always left untouched (homomorphisms fix constants).
        """
        new_terms = tuple(
            mapping.get(term, term) if isinstance(term, Variable) else term
            for term in self.terms
        )
        return Atom(self.relation, new_terms)

    def rename_relation(self, new_relation: str) -> "Atom":
        """Return a copy of the atom over a different relation symbol."""
        return Atom(new_relation, self.terms)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        args = ", ".join(str(term) for term in self.terms)
        return f"{self.relation}({args})"


def atom(relation: str, *terms: Term) -> Atom:
    """Convenience constructor: ``atom("r", A, B)``."""
    return Atom(relation, tuple(terms))


def vars_of(atoms: Iterable[Atom]) -> frozenset:
    """The set ``vars(A)`` for a collection of atoms (paper, Section 2)."""
    result: set = set()
    for item in atoms:
        result.update(item.variables)
    return frozenset(result)
