"""Property-based tests for the factor algebra and the UCQ/approx stack.

These complement the per-module unit tests with algebraic invariants
checked over randomized inputs: semiring factor laws, elimination-order
invariance of Inside-Out, inclusion–exclusion consistency, and sampler
uniformity at the distributional level.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx import AnswerSampler
from repro.counting.brute_force import count_brute_force
from repro.counting.semiring import COUNTING
from repro.exceptions import DecompositionNotFoundError
from repro.faq import count_insideout
from repro.faq.factor import Factor, multiply_all
from repro.faq.ordering import elimination_order_is_valid
from repro.query.terms import Variable
from repro.ucq import UnionQuery, count_union, count_union_brute_force
from repro.workloads.random_instances import random_instance

A, B, C = Variable("A"), Variable("B"), Variable("C")


def factor_strategy(schema, max_value=4):
    """Random counting-semiring factors over a fixed schema."""
    row = st.tuples(*(st.integers(0, 3) for _ in schema))
    return st.dictionaries(row, st.integers(1, max_value), max_size=6).map(
        lambda values: Factor(schema, values, COUNTING)
    )


class TestFactorAlgebraLaws:
    @given(f=factor_strategy((A, B)), g=factor_strategy((B, C)))
    @settings(max_examples=50, deadline=None)
    def test_multiply_commutes(self, f, g):
        assert f.multiply(g).values == g.multiply(f).values

    @given(f=factor_strategy((A,)), g=factor_strategy((A, B)),
           h=factor_strategy((B,)))
    @settings(max_examples=50, deadline=None)
    def test_multiply_associates(self, f, g, h):
        left = f.multiply(g).multiply(h)
        right = f.multiply(g.multiply(h))
        assert left.values == right.values

    @given(f=factor_strategy((A, B)))
    @settings(max_examples=50, deadline=None)
    def test_marginalization_order_irrelevant(self, f):
        ab = f.marginalize(A).marginalize(B)
        ba = f.marginalize(B).marginalize(A)
        assert ab.scalar_value() == ba.scalar_value()

    @given(f=factor_strategy((A, B)))
    @settings(max_examples=50, deadline=None)
    def test_total_mass_preserved_by_marginalization(self, f):
        total = sum(f.values.values())
        assert f.marginalize_all([A, B]).scalar_value() == total

    @given(f=factor_strategy((A, B)), g=factor_strategy((C,)))
    @settings(max_examples=50, deadline=None)
    def test_marginalizing_foreign_variable_distributes(self, f, g):
        # C occurs only in g: eliminating C before or after multiplying
        # gives the same factor.
        before = f.multiply(g.marginalize(C))
        after = f.multiply(g).marginalize(C)
        assert before.values == after.values

    @given(fs=st.lists(factor_strategy((A,)), min_size=0, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_multiply_all_order_invariant(self, fs):
        import random as _random

        shuffled = fs[:]
        _random.Random(0).shuffle(shuffled)
        assert multiply_all(fs).values == multiply_all(shuffled).values


class TestInsideOutOrderInvariance:
    @given(seed=st.integers(0, 3_000), order_seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_any_valid_order_gives_same_count(self, seed, order_seed):
        query, database = random_instance(
            n_variables=5, n_atoms=4, domain_size=3,
            tuples_per_relation=8, seed=seed,
        )
        rng = random.Random(order_seed)
        existential = sorted(query.existential_variables,
                             key=lambda v: v.name)
        free = sorted(query.free_variables, key=lambda v: v.name)
        rng.shuffle(existential)
        rng.shuffle(free)
        order = tuple(existential) + tuple(free)
        assert elimination_order_is_valid(query, order)
        assert count_insideout(query, database, order) == \
            count_brute_force(query, database)


class TestUnionInvariants:
    @given(seed=st.integers(0, 3_000))
    @settings(max_examples=10, deadline=None)
    def test_union_with_self_is_idempotent(self, seed):
        query, database = random_instance(
            n_variables=4, n_atoms=3, domain_size=3,
            tuples_per_relation=8, seed=seed,
        )
        union = UnionQuery((query, query))
        assert count_union(union, database) == \
            count_brute_force(query, database)

    @given(seed=st.integers(0, 3_000))
    @settings(max_examples=10, deadline=None)
    def test_union_at_least_max_disjunct(self, seed):
        query, database = random_instance(
            n_variables=4, n_atoms=3, domain_size=3,
            tuples_per_relation=8, seed=seed,
        )
        free = sorted(query.free_variables, key=lambda v: v.name)
        atom = query.atoms_sorted()[0]
        if not set(free) <= set(atom.variables):
            return
        other = query.restrict_to_atoms([atom]).with_free(free)
        union = UnionQuery((query, other))
        union_count = count_union(union, database, prune=False)
        assert union_count >= count_brute_force(query, database)
        assert union_count >= count_brute_force(other, database)
        assert union_count == count_union_brute_force(union, database)


class TestSamplerDistribution:
    @given(seed=st.integers(0, 3_000))
    @settings(max_examples=8, deadline=None)
    def test_sample_frequencies_flat(self, seed):
        query, database = random_instance(
            n_atoms=3, acyclic=True, domain_size=3,
            tuples_per_relation=6, seed=seed,
        )
        try:
            sampler = AnswerSampler.for_query(
                query, database, max_width=2, rng=random.Random(seed)
            )
        except DecompositionNotFoundError:
            return
        count = len(sampler)
        if count == 0 or count > 30:
            return
        draws = 120 * count
        from collections import Counter

        frequencies = Counter(
            tuple(sorted((v.name, value) for v, value in answer.items()))
            for answer in sampler.sample_many(draws)
        )
        assert len(frequencies) == count
        expected = draws / count
        for observed in frequencies.values():
            # 6 sigma of a binomial(draws, 1/count) around the mean.
            sigma = (draws * (1 / count) * (1 - 1 / count)) ** 0.5
            assert abs(observed - expected) < 6 * max(sigma, 1.0)
