"""Fractional edge covers and fractional hypertree width (Remark 4.4, [GM14]).

The paper notes that all tractability results transfer from generalized
hypertree decompositions to *fractional* hypertree decompositions.  We
implement the fractional edge cover number ``rho*`` of a bag (an LP solved
with scipy when available, with an exact rational fallback via vertex
enumeration of the small LP's dual — bags are tiny) and the fractional width
of a decomposition: ``fhw = max_p rho*(chi(p))``.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..hypergraph.acyclicity import JoinTree
from ..hypergraph.hypergraph import Hypergraph

try:  # scipy is available offline in this environment, but stay defensive.
    from scipy.optimize import linprog

    _HAVE_SCIPY = True
except Exception:  # pragma: no cover - import guard
    _HAVE_SCIPY = False


def fractional_edge_cover_number(bag: Iterable, hypergraph: Hypergraph,
                                 exact: bool = False) -> float:
    """``rho*(bag)``: minimize ``sum_e x_e`` with ``sum_{e ∋ v} x_e >= 1``
    for every ``v`` in *bag*, over the hyperedges of *hypergraph*.

    With ``exact=True`` (or without scipy) a small exact rational solver is
    used: optimal basic solutions lie on intersections of constraint
    hyperplanes, enumerated directly — adequate for bag sizes in the paper's
    examples.
    """
    bag = frozenset(bag)
    if not bag:
        return 0.0
    edges = [e for e in hypergraph.edges if e & bag]
    if not edges:
        raise ValueError("bag contains nodes covered by no hyperedge")
    uncoverable = bag - frozenset().union(*edges)
    if uncoverable:
        raise ValueError(f"nodes {sorted(map(str, uncoverable))} not coverable")
    if _HAVE_SCIPY and not exact:
        return _lp_scipy(bag, edges)
    return float(_lp_exact(bag, edges))


def _lp_scipy(bag: FrozenSet, edges: Sequence[FrozenSet]) -> float:
    nodes = sorted(bag, key=str)
    a_ub = [[-1.0 if node in edge else 0.0 for edge in edges] for node in nodes]
    b_ub = [-1.0] * len(nodes)
    cost = [1.0] * len(edges)
    result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * len(edges),
                     method="highs")
    if not result.success:  # pragma: no cover - LP is always feasible here
        raise RuntimeError(f"LP failed: {result.message}")
    return float(result.fun)


def _lp_exact(bag: FrozenSet, edges: Sequence[FrozenSet]) -> Fraction:
    """Exact rational LP via the dual: maximize ``sum_v y_v`` with
    ``sum_{v in e} y_v <= 1`` per edge, ``y >= 0`` (fractional independent
    set).  Optimal vertices are solutions of square subsystems; enumerate.
    """
    nodes = sorted(bag, key=str)
    n = len(nodes)
    node_index = {v: i for i, v in enumerate(nodes)}
    rows: List[Tuple[Tuple[Fraction, ...], Fraction]] = []
    for edge in edges:
        coeff = [Fraction(0)] * n
        for v in edge & bag:
            coeff[node_index[v]] = Fraction(1)
        rows.append((tuple(coeff), Fraction(1)))
    for i in range(n):  # y_i >= 0 as -y_i <= 0
        coeff = [Fraction(0)] * n
        coeff[i] = Fraction(-1)
        rows.append((tuple(coeff), Fraction(0)))
    best = Fraction(0)
    for subset in combinations(range(len(rows)), n):
        system = [rows[i] for i in subset]
        solution = _solve_square([list(r[0]) for r in system],
                                 [r[1] for r in system])
        if solution is None:
            continue
        if any(y < 0 for y in solution):
            continue
        feasible = all(
            sum(c * y for c, y in zip(coeff, solution)) <= rhs
            for coeff, rhs in rows
        )
        if feasible:
            best = max(best, sum(solution))
    return best


def _solve_square(matrix: List[List[Fraction]], rhs: List[Fraction]
                  ) -> Optional[List[Fraction]]:
    """Gaussian elimination over rationals; ``None`` if singular."""
    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next((r for r in range(col, n) if a[r][col] != 0), None)
        if pivot is None:
            return None
        a[col], a[pivot] = a[pivot], a[col]
        inv = Fraction(1, 1) / a[col][col]
        a[col] = [value * inv for value in a[col]]
        for r in range(n):
            if r != col and a[r][col] != 0:
                factor = a[r][col]
                a[r] = [x - factor * y for x, y in zip(a[r], a[col])]
    return [a[i][n] for i in range(n)]


def fractional_width_of_tree(tree: JoinTree, hypergraph: Hypergraph,
                             exact: bool = False) -> float:
    """``max_p rho*(bag_p)`` over the join tree's bags."""
    return max(
        (fractional_edge_cover_number(bag, hypergraph, exact=exact)
         for bag in tree.bags if bag),
        default=0.0,
    )


def agm_bound(query, database) -> float:
    """The AGM output-size bound ``prod_e |r_e|^{x_e}`` ([GM14]).

    Using an optimal fractional edge cover ``x`` of *all* variables, the
    number of satisfying assignments of the query is at most
    ``prod_e |r_e|^{x_e}``.  Computed from the cover LP's optimal weights;
    a worst-case optimal bound on ``|Q(D)|`` (and hence on the answer
    count), useful for sizing the counting problem before running it.
    """
    import math

    bag = frozenset(query.variables)
    hypergraph = query.hypergraph()
    edges = sorted(hypergraph.edges, key=lambda e: sorted(map(str, e)))
    # Re-solve the LP keeping the per-edge weights.
    nodes = sorted(bag, key=str)
    if not nodes:
        return 1.0
    sizes = {}
    for atom in query.atoms:
        edge = atom.variable_set
        size = len(database[atom.relation])
        sizes[edge] = min(sizes.get(edge, size), size)
    if _HAVE_SCIPY:
        a_ub = [[-1.0 if node in edge else 0.0 for edge in edges]
                for node in nodes]
        b_ub = [-1.0] * len(nodes)
        cost = [math.log(max(sizes[edge], 1)) for edge in edges]
        result = linprog(cost, A_ub=a_ub, b_ub=b_ub,
                         bounds=[(0, None)] * len(edges), method="highs")
        if result.success:
            return float(math.exp(result.fun))
    # Fallback: uniform optimal cover weights give a valid (weaker) bound.
    rho = fractional_edge_cover_number(bag, hypergraph, exact=True)
    biggest = max(sizes.values(), default=1)
    return float(biggest ** rho)
