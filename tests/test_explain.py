"""Tests for the EXPLAIN facility (:mod:`repro.counting.explain`)."""

from repro.counting.explain import (
    Explanation,
    core_summary,
    explain,
    render_join_tree,
)
from repro.db import Database
from repro.homomorphism.core import colored_core
from repro.hypergraph.acyclicity import JoinTree
from repro.query import parse_query
from repro.query.terms import make_variables
from repro.workloads.paper_databases import d2_bar_database
from repro.workloads.paper_queries import q0, q2_bar

A, B, C = make_variables("A", "B", "C")


class TestRenderJoinTree:
    def test_single_bag(self):
        tree = JoinTree((frozenset({A, B}),), ())
        assert render_join_tree(tree) == "[A,B]"

    def test_parent_child(self):
        tree = JoinTree(
            (frozenset({A, B}), frozenset({B, C})), ((0, 1),)
        )
        rendered = render_join_tree(tree)
        assert rendered.splitlines()[0] == "[A,B]"
        assert "`- [B,C]" in rendered

    def test_labels_annotated(self):
        tree = JoinTree(
            (frozenset({A, B}), frozenset({B, C})), ((0, 1),)
        )
        rendered = render_join_tree(tree, ["v1", "v2"])
        assert "[A,B] <- v1" in rendered
        assert "[B,C] <- v2" in rendered

    def test_forest_renders_all_roots(self):
        tree = JoinTree((frozenset({A}), frozenset({B})), ())
        rendered = render_join_tree(tree)
        assert "[A]" in rendered and "[B]" in rendered

    def test_branching_uses_both_connectors(self):
        tree = JoinTree(
            (frozenset({A, B}), frozenset({A}), frozenset({B})),
            ((0, 1), (0, 2)),
        )
        rendered = render_join_tree(tree)
        assert "+- " in rendered and "`- " in rendered


class TestExplain:
    def test_acyclic_strategy(self):
        query = parse_query("ans(A, B) :- r(A, B)")
        explanation = explain(query)
        assert explanation.strategy == "acyclic"
        assert "join-tree DP" in str(explanation)

    def test_structural_strategy_reports_width_and_core(self):
        explanation = explain(q0())
        assert explanation.strategy == "structural"
        assert explanation.details["#-hypertree width"] == 2
        assert explanation.sharp is not None
        text = str(explanation)
        assert "frontier hypergraph" in text
        assert "colored core drops" in text
        assert "decomposition" in text

    def test_hybrid_strategy_with_database(self):
        query, database = q2_bar(2), d2_bar_database(2)
        explanation = explain(query, database, max_width=2)
        assert explanation.strategy == "hybrid"
        assert explanation.hybrid is not None
        assert explanation.details["degree bound"] == 1
        assert "promoted pseudo-free" in str(explanation)

    def test_no_database_stops_before_hybrid(self):
        query = q2_bar(2)
        explanation = explain(query, max_width=2)
        assert explanation.strategy == "brute_force"
        assert any("no database" in note for note in explanation.notes)

    def test_cyclic_quantifier_free_notes(self):
        query = parse_query("ans(A, B, C) :- r(A, B), s(B, C), t(C, A)")
        explanation = explain(query)
        assert explanation.strategy == "structural"  # width 2 covers cycles
        assert any("cyclic" in note for note in explanation.notes)

    def test_explanation_is_dataclass_with_defaults(self):
        query = parse_query("ans(A) :- r(A, B)")
        bare = Explanation(query, "brute_force")
        assert "brute_force" in str(bare)


class TestCoreSummary:
    def test_coloring_atoms_hidden(self):
        summary = core_summary(colored_core(q0()))
        assert "__color_" not in summary
        assert "mw(A, B, I)" in summary
