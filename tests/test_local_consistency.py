"""Tests for the local-consistency decision procedure (Lemma 4.3 engine)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.local import nonempty_after_pairwise_consistency
from repro.counting.brute_force import count_brute_force
from repro.db import Database
from repro.query import parse_query
from repro.workloads.random_instances import random_instance


class TestNonEmptyDecision:
    def test_satisfiable_path(self, path_query, path_database):
        assert nonempty_after_pairwise_consistency(
            path_query, path_database, width=1
        )

    def test_unsatisfiable_join(self):
        query = parse_query("ans(A) :- r(A, B), s(B, C)")
        database = Database.from_dict({"r": [(1, 2)], "s": [(9, 3)]})
        assert not nonempty_after_pairwise_consistency(query, database, 1)

    def test_missing_relation_is_false(self):
        query = parse_query("ans(A) :- r(A, B), zzz(B)")
        database = Database.from_dict({"r": [(1, 2)]})
        assert not nonempty_after_pairwise_consistency(query, database, 1)

    def test_cyclic_query_needs_width_two(self):
        # An unsatisfiable triangle: pairwise consistency at width 1 keeps
        # all binary views non-empty (false positive, allowed by the
        # promise); width 2 detects emptiness.
        query = parse_query("ans(A) :- r(A, B), s(B, C), t(C, A)")
        database = Database.from_dict({
            "r": [(1, 2), (2, 3)],
            "s": [(2, 3), (3, 1)],
            "t": [(3, 2), (1, 3)],
        })
        assert count_brute_force(query, database) == 0
        assert not nonempty_after_pairwise_consistency(query, database, 2)

    def test_never_false_negative(self):
        # Soundness direction without any width promise.
        query = parse_query("ans(A) :- r(A, B), s(B, C), t(C, A)")
        database = Database.from_dict({
            "r": [(1, 2)], "s": [(2, 3)], "t": [(3, 1)],
        })
        assert count_brute_force(query, database) == 1
        for width in (1, 2):
            assert nonempty_after_pairwise_consistency(
                query, database, width
            )

    @given(seed=st.integers(0, 3_000))
    @settings(max_examples=15, deadline=None)
    def test_sound_on_random_instances(self, seed):
        query, database = random_instance(
            n_variables=5, n_atoms=4, domain_size=4,
            tuples_per_relation=10, seed=seed,
        )
        has_answers = count_brute_force(query, database) > 0
        decided = nonempty_after_pairwise_consistency(query, database, 2)
        if has_answers:
            assert decided  # no false negatives, ever
