"""The wire format of the networked shard fabric.

One *frame* is one JSON document in a self-delimiting, self-verifying
binary envelope::

    +-------+----------------+------------------+----------------+
    | magic | payload length | checksum (8B of  |  JSON payload  |
    | RPF1  |  (4B big-end.) |  sha256(payload))|   (UTF-8)      |
    +-------+----------------+------------------+----------------+

The header is fixed (16 bytes), the payload bounded by
:data:`MAX_FRAME_BYTES`.  The checksum makes a truncated or bit-flipped
frame *detectable*; the magic makes the stream *resynchronizable*: a
:class:`FrameDecoder` that hits garbage scans forward to the next magic
boundary, raises :class:`FrameError` for the damaged frame, and keeps
decoding subsequent frames — a corrupted request costs one retry, never
the connection.

Payloads reuse the repository's existing JSON vocabularies instead of
inventing a parallel one:

* session jobs cross the wire as their stream specs
  (:func:`repro.service.session.job_to_spec` /
  :func:`~repro.service.session.job_from_spec` — the same objects
  ``python -m repro session`` replays from JSON Lines files);
* count results as :func:`repro.service.jobs.result_to_dict` documents;
* errors as small typed objects (:func:`error_to_wire`), reconstructed
  on the client into the repository's own exception classes —
  :class:`~repro.service.router.ShardSaturatedError` keeps its
  ``retry_after_ms`` hint across the wire.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
import time
from typing import Optional, Tuple

from ...exceptions import (
    DatabaseError,
    DecompositionNotFoundError,
    NotAcyclicError,
    ReproError,
)
from ..jobs import JobFileError, json_safe, result_from_dict, result_to_dict
from ..router import ShardSaturatedError
from ..session import SessionJob, job_from_spec, job_to_spec

#: Frame magic: "RePro Frame, format 1".
MAGIC = b"RPF1"

_HEADER = struct.Struct(">4sI8s")

#: Size of the fixed frame header (magic + length + checksum prefix).
HEADER_SIZE = _HEADER.size

#: Hard bound on one frame's payload (a shipped database snapshot is the
#: largest legitimate payload; anything bigger is a corrupt length
#: field, and adopting it would stall the decoder forever).
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Receive chunk size of the socket helpers.
RECV_CHUNK = 1 << 16


class TransportError(ReproError):
    """A network-level failure: connect, send, receive, or timeout."""


class FrameError(TransportError):
    """One damaged frame (bad magic run-up, checksum, length, or JSON).

    Raised by :meth:`FrameDecoder.next_frame` *after* the damaged bytes
    have been consumed — the decoder (and therefore the connection)
    stays usable for every subsequent frame.
    """


class RemoteShardError(ReproError):
    """An error class the wire protocol could not map back onto a local
    exception type (the message carries the remote type name)."""


def checksum(payload: bytes) -> bytes:
    """The 8-byte frame checksum of *payload*."""
    return hashlib.sha256(payload).digest()[:8]


def encode_frame(payload_object: object) -> bytes:
    """*payload_object* as one framed byte string."""
    payload = json.dumps(json_safe(payload_object),
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return _HEADER.pack(MAGIC, len(payload), checksum(payload)) + payload


class FrameDecoder:
    """An incremental frame parser over a byte stream.

    Feed received bytes with :meth:`feed`; pull complete frames with
    :meth:`next_frame`.  Damage is contained per frame: a bad frame
    raises :class:`FrameError` once, consuming exactly the damaged bytes
    (resynchronizing on the next magic boundary when the header itself
    is suspect), and the decoder keeps working.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self._buffer = bytearray()
        self.max_frame_bytes = max_frame_bytes
        #: Damaged frames seen (checksum/garbage/oversize), for stats.
        self.rejected = 0

    @property
    def buffered(self) -> int:
        """Bytes fed but not yet consumed."""
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def _resync(self, start: int) -> None:
        """Drop garbage up to the next magic boundary at/after *start*."""
        position = self._buffer.find(MAGIC, start)
        if position < 0:
            # Keep a possible partial magic at the tail; everything
            # before it is garbage.
            keep = min(len(MAGIC) - 1, len(self._buffer))
            tail = bytes(self._buffer[-keep:]) if keep else b""
            for offset in range(len(tail)):
                if MAGIC.startswith(tail[offset:]):
                    del self._buffer[:len(self._buffer) - (keep - offset)]
                    return
            self._buffer.clear()
        else:
            del self._buffer[:position]

    def next_frame(self) -> Optional[object]:
        """The next decoded payload, ``None`` when more bytes are needed,
        or raise :class:`FrameError` for one damaged frame."""
        buffer = self._buffer
        head = bytes(buffer[:len(MAGIC)])
        if head and not (MAGIC.startswith(head) or head.startswith(MAGIC)):
            self.rejected += 1
            self._resync(1)
            raise FrameError("garbage before frame magic; resynchronized")
        if len(buffer) < HEADER_SIZE:
            return None
        magic, length, digest = _HEADER.unpack_from(buffer)
        if magic != MAGIC:  # pragma: no cover - guarded by the head check
            self.rejected += 1
            self._resync(1)
            raise FrameError("garbage before frame magic; resynchronized")
        if length > self.max_frame_bytes:
            # The length field itself is untrustworthy: skip this magic
            # and rescan rather than waiting for impossible bytes.
            self.rejected += 1
            self._resync(1)
            raise FrameError(
                f"frame announces {length} bytes, over the "
                f"{self.max_frame_bytes}-byte bound; resynchronized"
            )
        if len(buffer) < HEADER_SIZE + length:
            return None
        payload = bytes(buffer[HEADER_SIZE:HEADER_SIZE + length])
        del buffer[:HEADER_SIZE + length]
        if checksum(payload) != digest:
            self.rejected += 1
            raise FrameError("frame checksum mismatch; frame dropped")
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self.rejected += 1
            raise FrameError("frame payload is not valid JSON") from None


# ----------------------------------------------------------------------
# Socket helpers
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload_object: object) -> None:
    """Frame and send *payload_object*; socket failures become
    :class:`TransportError`."""
    try:
        sock.sendall(encode_frame(payload_object))
    except OSError as error:
        raise TransportError(f"send failed: {error}") from None


def recv_frame(sock: socket.socket, decoder: FrameDecoder,
               deadline: Optional[float] = None) -> object:
    """Receive one frame through *decoder* (monotonic *deadline*, or
    block forever).

    Propagates :class:`FrameError` (one damaged frame; the caller
    decides whether to keep reading) and raises :class:`TransportError`
    on timeout or a closed/reset connection.
    """
    while True:
        frame = decoder.next_frame()  # may raise FrameError
        if frame is not None:
            return frame
        try:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError("receive timed out")
                sock.settimeout(remaining)
            else:
                sock.settimeout(None)
        except OSError as error:
            # The socket died under us (e.g. server close mid-serve).
            raise TransportError(f"receive failed: {error}") from None
        try:
            chunk = sock.recv(RECV_CHUNK)
        except socket.timeout:
            raise TransportError("receive timed out") from None
        except OSError as error:
            raise TransportError(f"receive failed: {error}") from None
        if not chunk:
            raise TransportError(
                "connection closed mid-frame" if decoder.buffered
                else "connection closed"
            )
        decoder.feed(chunk)


# ----------------------------------------------------------------------
# Payload vocabularies: jobs, results, errors
# ----------------------------------------------------------------------
def job_to_wire(job: SessionJob) -> dict:
    """A session job as its wire (= stream-file) spec."""
    return job_to_spec(job)


def job_from_wire(spec: dict) -> SessionJob:
    """The inverse of :func:`job_to_wire`."""
    return job_from_spec(spec, where="<wire>")


def result_to_wire(result: object) -> dict:
    """A job result — :class:`~repro.counting.engine.CountResult` or an
    acknowledgement dict — as a tagged wire object."""
    from ...counting.engine import CountResult

    if isinstance(result, CountResult):
        return {"kind": "count", **result_to_dict(result)}
    if isinstance(result, dict):
        return {"kind": "ack", "ack": json_safe(result)}
    raise TransportError(
        f"cannot serialize job result of type {type(result).__name__}"
    )


def result_from_wire(payload: dict) -> object:
    """The inverse of :func:`result_to_wire`."""
    if not isinstance(payload, dict):
        raise TransportError("malformed wire result (not an object)")
    kind = payload.get("kind")
    if kind == "count":
        return result_from_dict(payload)
    if kind == "ack":
        ack = payload.get("ack")
        if isinstance(ack, dict):
            return ack
    raise TransportError(f"malformed wire result (kind={kind!r})")


#: Exception classes reconstructed by name on the client side.  Anything
#: else comes back as :class:`RemoteShardError` carrying the type name.
_WIRE_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (ReproError, DatabaseError, NotAcyclicError,
                DecompositionNotFoundError, JobFileError, TransportError,
                RemoteShardError, ValueError)
}


def error_to_wire(error: BaseException) -> dict:
    """An exception as a small typed wire object."""
    if isinstance(error, ShardSaturatedError):
        return {
            "type": "shard_saturated",
            "message": str(error),
            "shard": error.shard,
            "pending": error.pending,
            "retry_after_ms": error.retry_after_ms,
        }
    return {"type": type(error).__name__, "message": str(error)}


def error_from_wire(payload: dict) -> Exception:
    """The inverse of :func:`error_to_wire`: a raisable exception.

    Saturation hints are reconstructed as genuine
    :class:`~repro.service.router.ShardSaturatedError` instances (shard
    index, queue depth, and ``retry_after_ms`` intact), known repository
    exceptions by class name, anything else as
    :class:`RemoteShardError`.
    """
    if not isinstance(payload, dict):
        return RemoteShardError("malformed wire error (not an object)")
    error_type = payload.get("type")
    message = str(payload.get("message", ""))
    if error_type == "shard_saturated":
        try:
            return ShardSaturatedError(
                int(payload["shard"]), int(payload["pending"]),
                float(payload["retry_after_ms"]),
            )
        except (KeyError, TypeError, ValueError):
            return RemoteShardError(f"shard_saturated: {message}")
    known = _WIRE_ERROR_TYPES.get(str(error_type))
    if known is not None:
        return known(message)
    return RemoteShardError(f"{error_type}: {message}")


def parse_address(address: str) -> Tuple[str, int]:
    """``(host, port)`` from a ``host:port`` string."""
    host, separator, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not separator or not host or not (0 <= port <= 65535):
        raise ValueError(
            f"shard address {address!r} is not of the form host:port"
        )
    return host, port
