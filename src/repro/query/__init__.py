"""Conjunctive-query representation: terms, atoms, queries, parser, colorings."""

from .atom import Atom, atom, vars_of
from .coloring import (
    COLOR_PREFIX,
    color,
    color_symbol,
    colored_variables,
    fullcolor,
    is_color_atom,
    uncolor,
)
from .parser import parse_query
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable, is_constant, is_variable, make_variables

__all__ = [
    "Atom",
    "atom",
    "vars_of",
    "COLOR_PREFIX",
    "color",
    "color_symbol",
    "colored_variables",
    "fullcolor",
    "is_color_atom",
    "uncolor",
    "parse_query",
    "ConjunctiveQuery",
    "Constant",
    "Term",
    "Variable",
    "is_constant",
    "is_variable",
    "make_variables",
]
