"""E13 — Theorems 3.6 / 6.7: decomposition search is FPT in the query size.

Paper claims: finding #-decompositions (and hybrid decompositions) is
fixed-parameter tractable with the query size as parameter — polynomial in
the database, exponential only in the query.  We sweep (a) database size at
a fixed query: hybrid-search time should stay near-flat; (b) query size at
a fixed small database: search time grows (the FPT exponent), remaining
feasible at paper-scale queries.
"""

import pytest

from repro.decomposition.hybrid import find_hybrid_decomposition
from repro.decomposition.sharp import find_sharp_hypertree_decomposition
from repro.workloads import (
    d2_bar_database,
    q2_bar,
    qn1_chain,
)


@pytest.mark.benchmark(group="thm36-query-sweep")
@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_sharp_search_grows_with_query(benchmark, n):
    query = qn1_chain(n)
    decomposition = benchmark(find_sharp_hypertree_decomposition, query, 1)
    assert decomposition is not None


@pytest.mark.benchmark(group="thm67-db-sweep")
@pytest.mark.parametrize("m_z", [4, 16, 64])
def test_hybrid_search_flat_in_database(benchmark, m_z):
    query = q2_bar(2)
    database = d2_bar_database(2, m_z=m_z)
    hybrid = benchmark(find_hybrid_decomposition, query, database, 2)
    assert hybrid is not None and hybrid.degree == 1


@pytest.mark.benchmark(group="thm67-query-sweep")
@pytest.mark.parametrize("h", [1, 2])
def test_hybrid_search_grows_with_query(benchmark, h):
    query = q2_bar(h)
    database = d2_bar_database(h)
    hybrid = benchmark(find_hybrid_decomposition, query, database, 2)
    assert hybrid is not None and hybrid.degree == 1
