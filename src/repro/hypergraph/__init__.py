"""Hypergraph machinery: acyclicity, components, frontiers, coverings."""

from .acyclicity import JoinTree, is_acyclic, join_tree, require_join_tree
from .components import (
    component_frontiers,
    component_of,
    components,
    edges_of_component,
    frontier,
)
from .frontier import (
    all_frontiers,
    frontier_hypergraph,
    frontier_hypergraph_of_hypergraph,
    frontier_size,
)
from .hypergraph import Hypergraph, covers
from .render import (
    frontier_overlay_dot,
    hypergraph_to_dot,
    join_tree_to_dot,
    query_to_dot,
)

__all__ = [
    "JoinTree",
    "is_acyclic",
    "join_tree",
    "require_join_tree",
    "component_frontiers",
    "component_of",
    "components",
    "edges_of_component",
    "frontier",
    "all_frontiers",
    "frontier_hypergraph",
    "frontier_hypergraph_of_hypergraph",
    "frontier_size",
    "Hypergraph",
    "covers",
    "frontier_overlay_dot",
    "hypergraph_to_dot",
    "join_tree_to_dot",
    "query_to_dot",
]
