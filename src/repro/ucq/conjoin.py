"""Conjunction of CQs sharing an output schema (the intersection construction).

For disjuncts ``Q_i`` over the same free variables, the set of answers
common to all of them is exactly the answer set of the query whose atoms
are the union of the ``Q_i``'s atoms *after renaming the existential
variables apart*: an assignment of the free variables is in the
intersection iff each disjunct independently has a witness, and disjoint
existential namespaces keep the witnesses independent.  This is the
standard product step of inclusion–exclusion over UCQ answers [CM16].
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..exceptions import QueryError
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable


def rename_existentials_apart(query: ConjunctiveQuery, suffix: str
                              ) -> ConjunctiveQuery:
    """Rename every existential variable by appending *suffix*.

    Free variables are untouched; the renaming must not collide with any
    existing variable of the query.
    """
    mapping: Dict[Variable, Variable] = {}
    taken = {v.name for v in query.variables}
    for variable in sorted(query.existential_variables,
                           key=lambda v: v.name):
        renamed = Variable(f"{variable.name}{suffix}")
        if renamed.name in taken:
            raise QueryError(
                f"renaming collision: {renamed.name} already occurs in "
                f"{query.name}"
            )
        mapping[variable] = renamed
    if not mapping:
        return query
    return query.substitute(mapping, name=query.name)


def conjoin(first: ConjunctiveQuery, second: ConjunctiveQuery,
            name: str | None = None) -> ConjunctiveQuery:
    """The conjunction of two CQs over the same free variables.

    Answers of the result = (answers of *first*) ∩ (answers of *second*).
    """
    return conjoin_all((first, second), name=name)


def conjoin_all(queries: Sequence[ConjunctiveQuery],
                name: str | None = None) -> ConjunctiveQuery:
    """The conjunction of several CQs over the same free variables."""
    queries = tuple(queries)
    if not queries:
        raise QueryError("conjoin_all needs at least one query")
    schema = queries[0].free_variables
    for query in queries[1:]:
        if query.free_variables != schema:
            raise QueryError(
                "conjoin requires identical free variables; got "
                f"{sorted(v.name for v in schema)} and "
                f"{sorted(v.name for v in query.free_variables)}"
            )
    atoms: set = set()
    for index, query in enumerate(queries):
        renamed = rename_existentials_apart(query, f"_c{index}")
        atoms.update(renamed.atoms)
    return ConjunctiveQuery(
        frozenset(atoms), schema,
        name=name or "&".join(q.name for q in queries),
    )
