"""E6 — Figure 8, Example 4.1: the 4-cycle query Q1.

Paper claims: Q1 is a core; its frontier hypergraph contains {A, C}; its
#-hypertree width is exactly 2; structural counting is exact.
"""

import pytest

from repro.counting import count_brute_force, count_structural
from repro.db.generators import correlated_database
from repro.decomposition.sharp import (
    find_sharp_hypertree_decomposition,
    sharp_hypertree_width,
)
from repro.homomorphism import is_core
from repro.hypergraph.frontier import frontier_hypergraph
from repro.query import Variable
from repro.query.coloring import color
from repro.workloads import q1_cycle

A, C = Variable("A"), Variable("C")


@pytest.mark.benchmark(group="fig08-cycle")
def test_q1_structure(benchmark):
    query = q1_cycle()

    def analyze():
        return (
            is_core(color(query)),
            frontier_hypergraph(query),
        )

    core_flag, fh = benchmark(analyze)
    assert core_flag  # "Q1 cannot be simplified, as it is a core"
    assert frozenset({A, C}) in fh.edges


@pytest.mark.benchmark(group="fig08-cycle")
def test_sharp_width_is_two(benchmark):
    width = benchmark(sharp_hypertree_width, q1_cycle(), 3)
    assert width == 2
    assert find_sharp_hypertree_decomposition(q1_cycle(), 1) is None


@pytest.mark.benchmark(group="fig08-cycle")
@pytest.mark.parametrize("tuples", [50, 200])
def test_structural_counting_q1(benchmark, tuples):
    query = q1_cycle()
    database = correlated_database(query, 12, tuples, seed=17)
    count = benchmark(count_structural, query, database, 2)
    assert count == count_brute_force(query, database)
