"""Databases: finite relational structures over a vocabulary of symbols."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple

from ..exceptions import DatabaseError
from .relation import Relation, Row


class Database:
    """A database instance ``D``: a mapping from relation symbols to relations.

    The universe (set of constants) is implicit: the union of active domains.
    The class behaves like an immutable mapping; derived databases (view
    extensions, consistency-reduced databases, ...) are new objects.
    """

    __slots__ = ("_relations", "_fingerprint")

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: Dict[str, Relation] = {}
        self._fingerprint = None
        for relation in relations:
            if relation.name in self._relations:
                raise DatabaseError(f"duplicate relation symbol {relation.name!r}")
            self._relations[relation.name] = relation

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[Row]],
                  backend: str | None = None) -> "Database":
        """Build a database from ``{symbol: iterable-of-rows}``.

        Arity is inferred from the first row of each relation; empty
        relations cannot be created this way (use :meth:`with_relation`).
        Relations are built under *backend* (default: the process-wide
        :func:`~repro.db.columnar.default_backend`, i.e.
        ``$REPRO_BACKEND``).
        """
        from .columnar import make_relation  # lazy: columnar imports db

        relations = []
        for name, rows in data.items():
            rows = [tuple(r) for r in rows]
            if not rows:
                raise DatabaseError(
                    f"cannot infer arity of empty relation {name!r}; "
                    "use Database.with_relation instead"
                )
            relations.append(
                make_relation(name, len(rows[0]), rows, backend=backend)
            )
        return cls(relations)

    def with_backend(self, backend: str) -> "Database":
        """This database with every relation rebuilt under *backend*.

        Relations already on the target backend are reused as-is (their
        caches stay warm); the rest are re-encoded from their rows.
        """
        from .columnar import ColumnarRelation, make_relation

        converted = []
        for relation in self._relations.values():
            current = ("columnar" if isinstance(relation, ColumnarRelation)
                       else "tuple")
            if current == backend:
                converted.append(relation)
            else:
                converted.append(make_relation(
                    relation.name, relation.arity, relation.rows,
                    backend=backend,
                ))
        return Database(converted)

    def with_relation(self, relation: Relation) -> "Database":
        """A new database with *relation* added or replaced."""
        updated = dict(self._relations)
        updated[relation.name] = relation
        return Database(updated.values())

    def without(self, *names: str) -> "Database":
        """A new database dropping the named relations."""
        dropped = set(names)
        return Database(r for n, r in self._relations.items() if n not in dropped)

    def merged_with(self, other: "Database") -> "Database":
        """Union of vocabularies; *other* wins on clashes."""
        updated = dict(self._relations)
        updated.update(other._relations)
        return Database(updated.values())

    def renamed_restriction(self, symbol_map: Mapping[str, str]) -> "Database":
        """Only ``symbol_map``'s relations, renamed ``original -> target``.

        The renamed relations come from :meth:`Relation.renamed`, which
        caches the alias and shares the underlying row set, index cache
        and statistics handle — so the engine's canonical-space execution
        re-derives this database per call at the cost of a few dict
        lookups while the expensive per-relation caches stay warm.
        """
        return Database(
            self[original].renamed(target)
            for original, target in sorted(
                symbol_map.items(), key=lambda item: item[1]
            )
        )

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise DatabaseError(f"no relation named {name!r} in the database")

    def get(self, name: str) -> Relation | None:
        """The relation named *name*, or ``None`` when absent."""
        return self._relations.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def relations(self) -> Tuple[Relation, ...]:
        """All relation instances, in insertion order."""
        return tuple(self._relations.values())

    def symbols(self) -> frozenset:
        """The vocabulary: the set of relation names."""
        return frozenset(self._relations)

    # ------------------------------------------------------------------
    def active_domain(self) -> frozenset:
        """The set of all constants appearing anywhere in the database."""
        domain: set = set()
        for relation in self._relations.values():
            domain.update(relation.active_domain())
        return frozenset(domain)

    def max_relation_size(self) -> int:
        """``m``: the maximum number of tuples over the relations (Thm. 6.2)."""
        if not self._relations:
            return 0
        return max(len(r) for r in self._relations.values())

    def total_tuples(self) -> int:
        """``||D||``-style size measure: total tuple count."""
        return sum(len(r) for r in self._relations.values())

    def content_fingerprint(self) -> tuple:
        """A hashable identity for memo keys: the sorted relation contents.

        Databases are not hashable (insertion order is incidental), but
        row frozensets cache their hashes, so this key is cheap to hash
        repeatedly and equal for content-equal databases built
        independently.  Cached on the instance (the database is immutable),
        since callers — the homomorphism solver, the hybrid probe — ask
        once per call.
        """
        if self._fingerprint is None:
            self._fingerprint = tuple(sorted(
                (relation.name, relation.arity, relation.rows)
                for relation in self._relations.values()
            ))
        return self._fingerprint

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{len(rel)}]" for name, rel in sorted(self._relations.items())
        )
        return f"Database({parts})"
