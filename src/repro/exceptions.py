"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  Errors are deliberately fine-grained: decomposition
search failures, malformed queries and illegal databases are different
situations that callers typically want to handle differently.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class QueryError(ReproError):
    """A conjunctive query is malformed (arity mismatch, bad free variables...)."""


class ParseError(QueryError):
    """A textual query could not be parsed."""


class DatabaseError(ReproError):
    """A database is inconsistent with the vocabulary it is used with."""


class ArityMismatchError(DatabaseError):
    """A tuple's length does not match the arity of its relation."""


class SchemaError(ReproError):
    """A relational-algebra operation was applied to incompatible schemas."""


class DecompositionError(ReproError):
    """A decomposition object is structurally invalid."""


class DecompositionNotFoundError(DecompositionError):
    """No decomposition of the requested kind/width exists."""


class NotAcyclicError(DecompositionError):
    """An operation requiring an acyclic hypergraph received a cyclic one."""


class IllegalDatabaseError(DatabaseError):
    """A view database violates the legality conditions of Section 3."""
