"""Relational algebra over *sets of substitutions* (paper, Section 2).

The paper manipulates sets of substitutions ``theta : W -> D`` with the
operators ``pi`` (projection), ``sigma`` (selection), ``|><|`` (natural join)
and the left semijoin.  :class:`SubstitutionSet` implements exactly this: a
set of rows over a *schema* of variables.

The schema is always kept **sorted by variable name**, so two substitution
sets over the same variables are directly comparable regardless of how they
were produced; this canonical form is what makes the Figure 13 algorithm's
"#-relations" (sets of substitution sets) implementable with frozensets.

Every operator is **index-driven**: a substitution set lazily builds hash
indexes keyed by variable subsets (:meth:`SubstitutionSet.index_on`) and
caches them on the instance, so repeated joins/semijoins against the same
operand — the normal access pattern of the two-pass full reducer, the
Figure 13 #-relation semijoins and the engine's counting DPs — pay the
index build once.  Operators that would return an identical set return
``self`` unchanged, which keeps those caches alive across fixpoint passes.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Tuple

from ..exceptions import SchemaError
from ..query.atom import Atom
from ..query.terms import Constant, Variable
from .columnar import (
    ColumnarFallback,
    ColumnarRelation,
    KeyAggregate,
    columnar_kernels_available,
    identity_frame,
    join_frames,
    semijoin_frames,
)
from .relation import Relation

Row = Tuple[Hashable, ...]

_EMPTY_KEY = ()

#: Memo of :func:`_row_getter` extractors keyed by position tuple.  The
#: extractors are stateless and immutable, so sharing them module-wide is
#: safe; every join/project/semijoin call site used to rebuild identical
#: ``itemgetter`` objects even for identical schemas.  Holders that get
#: pickled (maintainer checkpoints) must drop the extractors first — the
#: zero/one-position cases are lambdas, which do not pickle.
_GETTER_MEMO: Dict[Tuple[int, ...], object] = {}


def _row_getter(positions: Tuple[int, ...]):
    """A C-speed key extractor for *positions* (always returns a tuple)."""
    getter = _GETTER_MEMO.get(positions)
    if getter is None:
        if not positions:
            getter = lambda row: _EMPTY_KEY  # noqa: E731
        elif len(positions) == 1:
            position = positions[0]
            getter = lambda row: (row[position],)  # noqa: E731
        else:
            getter = itemgetter(*positions)
        _GETTER_MEMO[positions] = getter
    return getter


class SubstitutionSet:
    """A set of substitutions over a fixed, sorted schema of variables."""

    __slots__ = ("schema", "rows", "_indexes", "_key_sets")

    def __init__(self, schema: Iterable[Variable], rows: Iterable[Row] = (),
                 _presorted: bool = False):
        schema = tuple(schema)
        self._indexes: Dict[Tuple[int, ...], Dict[Row, Tuple[Row, ...]]] = {}
        self._key_sets: Dict[Tuple[int, ...], FrozenSet[Row]] = {}
        if _presorted:
            self.schema = schema
            self.rows = rows if isinstance(rows, frozenset) else frozenset(rows)
            return
        order = sorted(range(len(schema)), key=lambda i: schema[i].name)
        sorted_schema = tuple(schema[i] for i in order)
        if len(set(sorted_schema)) != len(sorted_schema):
            raise SchemaError(f"duplicate variables in schema {schema}")
        if sorted_schema == schema:
            self.schema = schema
            self.rows = frozenset(tuple(r) for r in rows)
        else:
            self.schema = sorted_schema
            self.rows = frozenset(
                tuple(row[i] for i in order) for row in map(tuple, rows)
            )
        for row in self.rows:
            if len(row) != len(self.schema):
                raise SchemaError(
                    f"row {row!r} does not match schema {self.schema}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def unit(cls) -> "SubstitutionSet":
        """The empty-schema set containing the empty substitution.

        This is the identity element of the natural join.
        """
        return cls((), ((),), _presorted=True)

    @classmethod
    def empty(cls, schema: Iterable[Variable] = ()) -> "SubstitutionSet":
        """The empty set of substitutions over *schema*."""
        return cls(schema, ())

    @classmethod
    def from_atom(cls, atom: Atom, relation: Relation) -> "SubstitutionSet":
        """Match an atom's term pattern against a relation instance.

        Positions holding a :class:`Constant` filter rows; repeated variables
        enforce equality; the result's schema is the atom's variable set.
        """
        if relation.arity != atom.arity:
            raise SchemaError(
                f"atom {atom!r} has arity {atom.arity} but relation "
                f"{relation.name!r} has arity {relation.arity}"
            )
        variables = atom.variables  # distinct, first-occurrence order
        positions: Dict[Variable, int] = {}
        for index, term in enumerate(atom.terms):
            if isinstance(term, Variable) and term not in positions:
                positions[term] = index
        constraints = []  # (position, required value)
        equalities = []   # (position, first position of the same variable)
        for index, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                constraints.append((index, term.value))
            elif positions[term] != index:
                equalities.append((index, positions[term]))
        out = _row_getter(tuple(positions[v] for v in variables))
        if not constraints and not equalities:
            rows = [out(db_row) for db_row in relation]
        else:
            rows = []
            for db_row in relation:
                if all(db_row[i] == value for i, value in constraints) and \
                        all(db_row[i] == db_row[j] for i, j in equalities):
                    rows.append(out(db_row))
        return cls(variables, rows)

    @classmethod
    def from_dicts(cls, schema: Iterable[Variable],
                   substitutions: Iterable[Mapping[Variable, Hashable]]
                   ) -> "SubstitutionSet":
        """Build from an iterable of substitution dictionaries."""
        schema = tuple(schema)
        return cls(schema, (tuple(s[v] for v in schema) for s in substitutions))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SubstitutionSet):
            return NotImplemented
        return self.schema == other.schema and self.rows == other.rows

    def __hash__(self) -> int:
        return hash((self.schema, self.rows))

    def __repr__(self) -> str:
        names = ",".join(v.name for v in self.schema)
        return f"SubstitutionSet([{names}], |rows|={len(self.rows)})"

    def variable_set(self) -> FrozenSet[Variable]:
        """The schema as a frozen set."""
        return frozenset(self.schema)

    def iter_dicts(self) -> Iterator[Dict[Variable, Hashable]]:
        """Iterate rows as substitution dictionaries."""
        for row in self.rows:
            yield dict(zip(self.schema, row))

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _positions(self, variables: Iterable[Variable]) -> Tuple[int, ...]:
        index = {v: i for i, v in enumerate(self.schema)}
        try:
            return tuple(index[v] for v in variables)
        except KeyError as exc:
            raise SchemaError(
                f"variable {exc.args[0]} not in schema {self.schema}"
            ) from None

    def _present_sorted(self, variables: Iterable[Variable]
                        ) -> Tuple[Variable, ...]:
        """The schema's subset of *variables*, in canonical sorted order."""
        wanted = set(variables) & set(self.schema)
        return tuple(sorted(wanted, key=lambda v: v.name))

    def index_on(self, variables: Iterable[Variable]
                 ) -> Dict[Row, Tuple[Row, ...]]:
        """A hash index ``{key_row: rows}`` on the given variable subset.

        Keys follow the canonical sorted order of the variables present in
        the schema (variables outside the schema are ignored).  The index is
        built lazily and cached on the instance; the set is immutable, so a
        cached index never goes stale.  Do not mutate the returned mapping.
        """
        positions = self._positions(self._present_sorted(variables))
        cached = self._indexes.get(positions)
        if cached is not None:
            return cached
        key_of = _row_getter(positions)
        buckets: Dict[Row, list] = {}
        for row in self.rows:
            key = key_of(row)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [row]
            else:
                bucket.append(row)
        index = {key: tuple(rows) for key, rows in buckets.items()}
        self._indexes[positions] = index
        self._key_sets.setdefault(positions, frozenset(index))
        return index

    def projection_keys(self, variables: Iterable[Variable]
                        ) -> FrozenSet[Row]:
        """The distinct key rows of :meth:`index_on` (cached, cheaper).

        This is the row set of ``pi_variables(self)`` without materializing
        a new substitution set — the membership structure semijoins probe.
        """
        positions = self._positions(self._present_sorted(variables))
        cached = self._key_sets.get(positions)
        if cached is not None:
            return cached
        key_of = _row_getter(positions)
        keys = frozenset(key_of(row) for row in self.rows)
        self._key_sets[positions] = keys
        return keys

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def project(self, variables: Iterable[Variable]) -> "SubstitutionSet":
        """``pi_W``: restriction of every substitution to *variables*.

        Variables not in the schema are ignored (projection onto the
        intersection), mirroring the paper's convention ``pi_free(Q)(r_v)``
        where ``r_v`` may not contain every free variable.
        """
        wanted = self._present_sorted(variables)
        if wanted == self.schema:
            return self
        return SubstitutionSet(
            wanted, self.projection_keys(wanted), _presorted=True
        )

    def select(self, binding: Mapping[Variable, Hashable]) -> "SubstitutionSet":
        """``sigma_theta``: keep substitutions agreeing with *binding*."""
        in_schema = set(self.schema)
        if not all(v in in_schema for v in binding):
            missing = set(binding) - in_schema
            raise SchemaError(f"selection variables {missing} not in schema")
        wanted = self._present_sorted(binding)
        key = tuple(binding[v] for v in wanted)
        rows = self.index_on(wanted).get(key, ())
        if len(rows) == len(self.rows):
            return self
        return SubstitutionSet(self.schema, frozenset(rows), _presorted=True)

    def join(self, other: "SubstitutionSet") -> "SubstitutionSet":
        """Natural join on the shared variables (hash join).

        The smaller operand is the build side; its cached
        :meth:`index_on` index over the shared variables is reused across
        repeated joins.  Output rows are assembled by a precompiled
        permutation over ``probe_row + build_extras`` so the inner loop
        stays in C.
        """
        mine = set(self.schema)
        shared = tuple(v for v in other.schema if v in mine)
        result_schema = tuple(
            sorted(mine | set(other.schema), key=lambda v: v.name)
        )
        build, probe = (self, other) if len(self) <= len(other) else (other, self)
        if not build.rows or not probe.rows:
            return SubstitutionSet(result_schema, frozenset(), _presorted=True)
        index = build.index_on(shared)
        probe_key = _row_getter(probe._positions(
            build._present_sorted(shared)  # canonical key order, both sides
        )) if shared else _row_getter(())
        # Result rows are permutations of probe_row + build_extra values.
        probe_map = {v: i for i, v in enumerate(probe.schema)}
        build_extra = tuple(
            i for i, v in enumerate(build.schema) if v not in probe_map
        )
        extra_of = _row_getter(build_extra)
        combined = probe.schema + tuple(build.schema[i] for i in build_extra)
        combined_map = {v: i for i, v in enumerate(combined)}
        permute = _row_getter(tuple(combined_map[v] for v in result_schema))
        rows = set()
        add = rows.add
        for p_row in probe.rows:
            bucket = index.get(probe_key(p_row))
            if bucket:
                for b_row in bucket:
                    add(permute(p_row + extra_of(b_row)))
        return SubstitutionSet(result_schema, frozenset(rows), _presorted=True)

    def semijoin(self, other: "SubstitutionSet") -> "SubstitutionSet":
        """``self |>< other``: substitutions of *self* with a match in *other*.

        This is the paper's ``S1 (left-semijoin) S2 = pi_W1(S1 |><| S2)``.
        Probes *other*'s cached key set; returns ``self`` unchanged (caches
        intact) when nothing is filtered out.
        """
        if not self.rows:
            return self
        mine = set(self.schema)
        shared = tuple(v for v in other.schema if v in mine)
        if not shared:
            # Join degenerates to a cross product: keep all iff other nonempty.
            if other.rows:
                return self
            return SubstitutionSet(self.schema, frozenset(), _presorted=True)
        keys = other.projection_keys(shared)
        my_key = _row_getter(self._positions(self._present_sorted(shared)))
        kept = frozenset(row for row in self.rows if my_key(row) in keys)
        if len(kept) == len(self.rows):
            return self
        return SubstitutionSet(self.schema, kept, _presorted=True)

    def semijoin_all(self, others: Iterable["SubstitutionSet"]
                     ) -> "SubstitutionSet":
        """Semijoin against several sets in a single scan of ``self``.

        Equivalent to folding :meth:`semijoin` over *others*, but the rows
        of ``self`` are visited once — the shape the full reducer's
        bottom-up pass wants when a join-tree vertex absorbs all of its
        children.  Returns ``self`` when nothing is filtered out.
        """
        if not self.rows:
            return self
        probes = []
        mine = set(self.schema)
        for other in others:
            shared = tuple(v for v in other.schema if v in mine)
            if not shared:
                if not other.rows:
                    return SubstitutionSet(
                        self.schema, frozenset(), _presorted=True
                    )
                continue
            probes.append((
                _row_getter(self._positions(self._present_sorted(shared))),
                other.projection_keys(shared),
            ))
        if not probes:
            return self
        kept = frozenset(
            row for row in self.rows
            if all(key_of(row) in keys for key_of, keys in probes)
        )
        if len(kept) == len(self.rows):
            return self
        return SubstitutionSet(self.schema, kept, _presorted=True)

    # ------------------------------------------------------------------
    # Grouping / counting helpers
    # ------------------------------------------------------------------
    def group_by(self, variables: Iterable[Variable]
                 ) -> Dict[Row, "SubstitutionSet"]:
        """Partition by the projection onto *variables* (intersected with schema).

        Returns ``{key_row: group}`` where ``key_row`` follows the sorted
        order of the grouping variables present in the schema.
        """
        return {
            key: SubstitutionSet(self.schema, frozenset(rows), _presorted=True)
            for key, rows in self.index_on(variables).items()
        }

    def count_distinct(self, variables: Iterable[Variable]) -> int:
        """Number of distinct projections onto *variables*."""
        return len(self.projection_keys(variables))

    def max_group_size(self, variables: Iterable[Variable]) -> int:
        """Maximum multiplicity of any projection onto *variables*.

        This is the *degree* ``deg`` of Definition 6.1 for this relation.
        Returns 0 for the empty set.
        """
        return max(
            (len(rows) for rows in self.index_on(variables).values()),
            default=0,
        )


def pop_connected(pending: list, bound) -> object:
    """Remove and return the first pending part sharing a variable with
    *bound* (falling back to the first part: a cross product is then
    unavoidable).  ``pending`` must be sorted smallest-first; parts need a
    ``variable_set()`` method — shared by substitution sets and semiring
    factors."""
    index = next(
        (i for i, part in enumerate(pending)
         if part.variable_set() & bound),
        0,
    )
    return pending.pop(index)


def fold_connected(parts, combine, unit):
    """Fold *combine* over *parts* smallest-first with greedy connectivity.

    The shared join-ordering heuristic of :func:`join_all`,
    :func:`join_project`, the brute-force full join and
    :func:`repro.faq.factor.multiply_all`: each step combines the smallest
    part that shares a variable with the result so far, deferring cross
    products until they are unavoidable.  *unit* supplies the result for
    an empty collection.
    """
    pending = sorted(parts, key=len)
    if not pending:
        return unit()
    result = pending.pop(0)
    while pending:
        result = combine(result, pop_connected(pending, result.variable_set()))
    return result


def join_all(parts: Iterable[SubstitutionSet]) -> SubstitutionSet:
    """Natural join of a collection; smallest-first with greedy connectivity."""
    return fold_connected(
        parts, lambda a, b: a.join(b), SubstitutionSet.unit
    )


# ----------------------------------------------------------------------
# Backend-dispatching relation operators.
#
# These run directly over Relation instances (not substitution sets) and
# pick the execution strategy from the operands' backend: two columnar
# relations go through the vectorized code-space kernels of
# :mod:`repro.db.columnar`; anything else — tuple relations, mixed-
# backend pairs, kernels unavailable, or a kernel raising
# :class:`~repro.db.columnar.ColumnarFallback` — takes the index-driven
# tuple path.  Results keep the columnar backend when the fast path ran.
# ----------------------------------------------------------------------
def _columnar_pair(left: Relation, right: Relation) -> bool:
    return (isinstance(left, ColumnarRelation)
            and isinstance(right, ColumnarRelation)
            and columnar_kernels_available())


def relation_join(left: Relation, right: Relation,
                  on: Iterable[Tuple[int, int]],
                  name: str | None = None) -> Relation:
    """``pi(left |><| right)`` on position pairs *on*.

    The result's columns are all of *left*'s followed by *right*'s
    columns not named in *on* (the join columns appear once, from the
    left side); rows are deduplicated.  Columnar operands run the join
    entirely in code space — keys are compared through cached dictionary
    translations, matches expanded with ``searchsorted``/``repeat`` —
    and the result is columnar.
    """
    on = tuple((int(a), int(b)) for a, b in on)
    if name is None:
        name = f"{left.name}*{right.name}"
    drop = {b for _, b in on}
    keep_right = tuple(j for j in range(right.arity) if j not in drop)
    arity = left.arity + len(keep_right)
    if _columnar_pair(left, right):
        try:
            frame = join_frames(
                identity_frame(left), identity_frame(right),
                tuple(a for a, _ in on), tuple(b for _, b in on),
                tuple(range(left.arity)) + tuple(
                    left.arity + j for j in keep_right
                ),
                left.arity,
            )
            return ColumnarRelation.from_columns(
                name, frame.dicts, frame.cols, frame.n
            )
        except ColumnarFallback:
            pass
    index = right.index_on(tuple(b for _, b in on))
    key_of = _row_getter(tuple(a for a, _ in on))
    extra_of = _row_getter(keep_right)
    rows = set()
    add = rows.add
    get = index.get
    for row in left:
        bucket = get(key_of(row))
        if bucket:
            for other in bucket:
                add(row + extra_of(other))
    return type(left)(name, arity, rows)


def relation_semijoin(left: Relation, right: Relation,
                      on: Iterable[Tuple[int, int]]) -> Relation:
    """``left |>< right``: rows of *left* with a key match in *right*.

    Columnar operands run a key-set membership scan over encoded
    columns (``isin`` on combined int64 codes); the unfiltered case
    returns *left* itself, caches intact.
    """
    on = tuple((int(a), int(b)) for a, b in on)
    if not on:
        raise SchemaError("relation_semijoin needs at least one position pair")
    if _columnar_pair(left, right):
        try:
            frame = identity_frame(left)
            filtered = semijoin_frames(
                frame, identity_frame(right),
                tuple(a for a, _ in on), tuple(b for _, b in on),
            )
            if filtered is frame:
                return left
            return ColumnarRelation.from_columns(
                left.name, filtered.dicts, filtered.cols, filtered.n
            )
        except ColumnarFallback:
            pass
    keys = set(map(_row_getter(tuple(b for _, b in on)), right))
    key_of = _row_getter(tuple(a for a, _ in on))
    kept = frozenset(row for row in left if key_of(row) in keys)
    if len(kept) == len(left):
        return left
    return type(left)(left.name, left.arity, kept)


def relation_project_counts(relation: Relation,
                            positions: Iterable[int]) -> Dict[Row, int]:
    """``{projected_row: multiplicity}`` for ``pi_positions(relation)``.

    The columnar path groups the encoded key columns directly
    (sort + segment boundaries over combined int64 codes) and decodes
    only the distinct keys — no per-row tuple is ever materialized.
    """
    positions = tuple(int(p) for p in positions)
    if isinstance(relation, ColumnarRelation) and columnar_kernels_available():
        try:
            frame = identity_frame(relation)
            cols = [frame.cols[p] for p in positions]
            dicts = [frame.dicts[p] for p in positions]
            aggregate = frame.cached(
                ("agg", positions),
                lambda: KeyAggregate.over(cols, dicts, frame.n),
            )
            # Strict mixed-radix codes decode positionally: peel the
            # last column's digit off with divmod, right to left.
            remaining = aggregate.keys
            digit_columns = []
            for size in reversed(aggregate.sizes):
                digit_columns.append(remaining % size)
                remaining = remaining // size
            digit_columns.reverse()
            return {
                tuple(column_dict.values[int(column[i])]
                      for column_dict, column in zip(dicts, digit_columns)):
                int(aggregate.totals[i])
                for i in range(len(aggregate.keys))
            }
        except ColumnarFallback:
            pass
    key_of = _row_getter(positions)
    counts: Dict[Row, int] = {}
    get = counts.get
    for row in relation:
        key = key_of(row)
        counts[key] = get(key, 0) + 1
    return counts


def join_project(parts: Iterable[SubstitutionSet],
                 keep: Iterable[Variable]) -> SubstitutionSet:
    """``pi_keep`` of the natural join, with projections pushed inside.

    After each pairwise join, variables that occur in no remaining part and
    are not in *keep* are projected away immediately, so intermediates never
    carry columns that cannot influence the final result.  This is the
    factorized-evaluation trick the view-materialization path relies on:
    a width-``k`` view joined only to be projected onto a bag never
    materializes the full k-way product.
    """
    keep = frozenset(keep)
    parts = list(parts)
    # Pre-projection: a column that is neither kept nor shared with any
    # other part can never constrain anything — drop it before joining
    # (this turns "join two disjoint atoms, then project" into a cross
    # product of the *projections*).
    projected = []
    for index, part in enumerate(parts):
        others: set = set()
        for j, other in enumerate(parts):
            if j != index:
                others |= other.variable_set()
        projected.append(part.project(
            (keep | others) & part.variable_set()
        ))
    pending = sorted(projected, key=len)
    if not pending:
        return SubstitutionSet.unit()
    result = pending.pop(0)
    while pending:
        result = result.join(pop_connected(pending, result.variable_set()))
        needed = set(keep)
        for part in pending:
            needed |= part.variable_set()
        result = result.project(needed & result.variable_set())
    return result.project(keep)
