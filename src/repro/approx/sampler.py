"""Exact uniform sampling of query answers (counting => uniform generation).

On the tractable classes of the paper, the Theorem 3.7 pipeline produces a
family of *globally consistent* bag relations over the free variables whose
acyclic join is exactly the answer set.  The same dynamic program that
counts the join (``count_join_tree``) annotates every bag tuple with the
number of join tuples it participates in below itself; sampling a join
tuple uniformly is then a single top-down pass:

1. at each root, pick a tuple with probability ``count / component_total``;
2. at each child, restrict to the tuples matching the parent's shared
   variables and pick one with probability proportional to its count.

The running-intersection property makes the per-bag choices compose into a
well-defined assignment, and the factorized probabilities multiply to
``1 / |answers|`` — exactly uniform, no rejection.

This realizes, for #-covered queries, the sampling half of the FPRAS
results of [ACJR21b] discussed in the paper's related work, and it powers
the Karp–Luby union estimator.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..counting.structural import exact_bag_relations
from ..db.algebra import SubstitutionSet
from ..db.database import Database
from ..decomposition.sharp import find_sharp_hypertree_decomposition
from ..exceptions import DecompositionNotFoundError
from ..hypergraph.acyclicity import JoinTree
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable

Row = Tuple[Hashable, ...]
Answer = Dict[Variable, Hashable]


class AnswerSampler:
    """Uniform sampler over the join of consistent acyclic bag relations.

    Build one with :meth:`for_query` (runs the Theorem 3.7 pipeline) or
    directly from bag relations on a join tree.  ``len(sampler)`` is the
    exact answer count; :meth:`sample` draws one uniform answer.
    """

    def __init__(self, bags: Sequence[SubstitutionSet], tree: JoinTree,
                 rng: Optional[random.Random] = None):
        from ..consistency.pairwise import full_reducer

        self._rng = rng if rng is not None else random.Random()
        self._bags = full_reducer(list(bags), tree)
        self._tree = tree
        self._order = tree.rooted_orders()
        self._counts: List[Dict[Row, int]] = [dict() for _ in self._bags]
        self._children: Dict[int, List[int]] = {}
        self._roots: List[int] = []
        self._root_totals: Dict[int, int] = {}
        # Per (parent, child) edge: {shared_key: (weighted_rows, total)} so
        # the top-down pass is a hash lookup, not a scan of the child bag.
        self._edge_index: Dict[
            Tuple[int, int], Dict[Row, Tuple[List[Tuple[Row, int]], int]]
        ] = {}
        self._run_bottom_up()

    # ------------------------------------------------------------------
    @classmethod
    def for_query(cls, query: ConjunctiveQuery, database: Database,
                  max_width: int = 3,
                  rng: Optional[random.Random] = None) -> "AnswerSampler":
        """Sampler for *query*'s answers via a #-hypertree decomposition."""
        for width in range(1, max_width + 1):
            decomposition = find_sharp_hypertree_decomposition(query, width)
            if decomposition is not None:
                reduced, tree = exact_bag_relations(decomposition, database)
                free = query.free_variables
                projected = [bag.project(free) for bag in reduced]
                return cls(projected, tree, rng)
        raise DecompositionNotFoundError(
            f"{query.name}: no #-hypertree decomposition of width "
            f"<= {max_width}; the uniform sampler needs one"
        )

    # ------------------------------------------------------------------
    def _run_bottom_up(self) -> None:
        """The counting DP, keeping per-tuple counts for the top-down pass."""
        if any(len(bag) == 0 for bag in self._bags):
            for vertex, parent, children in self._order:
                self._children[vertex] = children
                if parent is None:
                    self._roots.append(vertex)
                    self._root_totals[vertex] = 0
            return
        for vertex, parent, children in self._order:
            self._children[vertex] = children
            relation = self._bags[vertex]
            child_aggregates = []
            for child in children:
                shared = self._shared(vertex, child)
                child_positions = self._bags[child]._positions(shared)
                grouped: Dict[Row, Tuple[List[Tuple[Row, int]], int]] = {}
                for row, count in self._counts[child].items():
                    key = tuple(row[i] for i in child_positions)
                    entry = grouped.get(key)
                    if entry is None:
                        grouped[key] = ([(row, count)], count)
                    else:
                        entry[0].append((row, count))
                        grouped[key] = (entry[0], entry[1] + count)
                self._edge_index[(vertex, child)] = grouped
                aggregate = {key: total for key, (_, total) in grouped.items()}
                child_aggregates.append(
                    (relation._positions(shared), aggregate)
                )
            for row in relation.rows:
                total = 1
                for positions, aggregate in child_aggregates:
                    key = tuple(row[i] for i in positions)
                    total *= aggregate.get(key, 0)
                    if total == 0:
                        break
                if total:
                    self._counts[vertex][row] = total
            if parent is None:
                self._roots.append(vertex)
                self._root_totals[vertex] = sum(
                    self._counts[vertex].values()
                )

    def _shared(self, vertex: int, child: int) -> Tuple[Variable, ...]:
        child_schema = set(self._bags[child].schema)
        return tuple(
            v for v in self._bags[vertex].schema if v in child_schema
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """The exact number of answers (product over root components)."""
        total = 1
        for root in self._roots:
            total *= self._root_totals[root]
        return total

    @property
    def count(self) -> int:
        """Alias of ``len(self)``: the exact answer count."""
        return len(self)

    def sample(self) -> Answer:
        """One exactly-uniform answer.  Raises ``IndexError`` when empty."""
        if len(self) == 0:
            raise IndexError("cannot sample from an empty answer set")
        answer: Answer = {}
        for root in self._roots:
            row = self._weighted_choice(
                list(self._counts[root].items()), self._root_totals[root]
            )
            self._descend(root, row, answer)
        return answer

    def sample_many(self, k: int) -> List[Answer]:
        """*k* independent uniform answers."""
        return [self.sample() for _ in range(k)]

    def _descend(self, vertex: int, row: Row, answer: Answer) -> None:
        relation = self._bags[vertex]
        answer.update(zip(relation.schema, row))
        for child in self._children[vertex]:
            shared = self._shared(vertex, child)
            my_positions = relation._positions(shared)
            key = tuple(row[i] for i in my_positions)
            matching, total = self._edge_index[(vertex, child)][key]
            child_row = self._weighted_choice(matching, total)
            self._descend(child, child_row, answer)

    def _weighted_choice(self, weighted_rows: List[Tuple[Row, int]],
                         total: int) -> Row:
        target = self._rng.randrange(total)
        cumulative = 0
        for row, count in weighted_rows:
            cumulative += count
            if target < cumulative:
                return row
        raise AssertionError("weights did not sum to total")  # pragma: no cover


def sample_answers(query: ConjunctiveQuery, database: Database, k: int,
                   max_width: int = 3, seed: Optional[int] = None
                   ) -> List[Answer]:
    """Draw *k* uniform answers of *query* on *database* (Thm. 3.7 classes)."""
    rng = random.Random(seed)
    sampler = AnswerSampler.for_query(query, database, max_width, rng)
    return sampler.sample_many(k)
