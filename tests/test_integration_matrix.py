"""Integration matrix: every counting path agrees on every instance.

One battery of (query, database) instances — the paper's examples plus the
library's workloads — pushed through every independent counting path:

* the auto engine and each applicable forced strategy;
* Inside-Out (FAQ) variable elimination;
* polynomial-delay enumeration (counted);
* the uniform sampler's internal count (when decomposable);
* the UCQ counter on the single-disjunct union.

Disagreement between any two paths is a bug in one of them; this module is
the library's strongest end-to-end safety net.
"""

import pytest

from repro import count_answers
from repro.approx import AnswerSampler
from repro.counting import count_brute_force, enumerate_answers
from repro.exceptions import DecompositionNotFoundError
from repro.faq import count_insideout
from repro.ucq import UnionQuery, count_union
from repro.workloads.graph_patterns import (
    cycle_query,
    gnp_graph,
    path_query,
    star_query,
    triangle_per_vertex_query,
)
from repro.workloads.paper_databases import (
    d2_bar_database,
    d2_database,
    workforce_database,
)
from repro.workloads.paper_queries import q0, q1_cycle, q2_acyclic, q2_bar
from repro.workloads.random_instances import random_instance
from repro.workloads.snowflake import (
    customers_by_category_query,
    snowflake_database,
    store_catalogue_query,
)
from repro.db.generators import correlated_database

GRAPH = gnp_graph(12, 0.3, seed=31)


def instance_battery():
    """The (name, query, database) battery; kept small enough for CI."""
    yield "q0-workforce", q0(), workforce_database(n_workers=15, seed=1)
    yield "q1-cycle", q1_cycle(), correlated_database(
        q1_cycle(), 8, 30, seed=2
    )
    yield "q2-acyclic", q2_acyclic(2), d2_database(2)
    yield "q2bar-hybrid", q2_bar(2), d2_bar_database(2)
    yield "star3", star_query(3), GRAPH
    yield "path3", path_query(3), GRAPH
    yield "cycle4", cycle_query(4, n_free=2), GRAPH
    yield "triangle-vertex", triangle_per_vertex_query(), GRAPH
    yield ("snowflake-categories", customers_by_category_query(),
           snowflake_database(n_orders=50, seed=3))
    yield ("snowflake-catalogue", store_catalogue_query(),
           snowflake_database(n_orders=50, seed=3))
    for seed in (11, 22, 33):
        query, database = random_instance(
            n_variables=5, n_atoms=4, domain_size=4,
            tuples_per_relation=12, seed=seed,
        )
        yield f"random-{seed}", query, database


BATTERY = list(instance_battery())
IDS = [name for name, _, _ in BATTERY]


@pytest.fixture(scope="module")
def oracle_counts():
    return {
        name: count_brute_force(query, database)
        for name, query, database in BATTERY
    }


@pytest.mark.parametrize("name,query,database", BATTERY, ids=IDS)
class TestAllPathsAgree:
    def test_auto_engine(self, name, query, database, oracle_counts):
        assert count_answers(query, database).count == oracle_counts[name]

    def test_insideout(self, name, query, database, oracle_counts):
        assert count_insideout(query, database) == oracle_counts[name]

    def test_enumeration(self, name, query, database, oracle_counts):
        enumerated = sum(1 for _ in enumerate_answers(query, database))
        assert enumerated == oracle_counts[name]

    def test_sampler_count(self, name, query, database, oracle_counts):
        try:
            sampler = AnswerSampler.for_query(query, database, max_width=2)
        except DecompositionNotFoundError:
            pytest.skip("no width-2 #-decomposition (expected for hybrids)")
        assert len(sampler) == oracle_counts[name]

    def test_single_disjunct_union(self, name, query, database,
                                   oracle_counts):
        union = UnionQuery((query,))
        assert count_union(union, database) == oracle_counts[name]


@pytest.mark.parametrize("method", ["structural", "degree"])
def test_forced_strategies_on_decomposable_instances(method):
    for name, query, database in BATTERY:
        if name == "q2bar-hybrid":
            continue  # structurally uncoverable by design (Example 6.3)
        try:
            result = count_answers(query, database, method=method)
        except Exception:
            continue  # strategy inapplicable: the auto-engine test covers it
        assert result.count == count_brute_force(query, database), name
