"""Batch service benchmark: sequential-vs-pooled and cold-vs-warm cache.

The acceptance workload of the batch service: **20 jobs sharing 4 query
shapes** (each job a distinct bijective renaming of its shape's query,
all jobs of a shape over one shared database).  Three measurements:

* ``cold_sequential`` — 20 independent ``count_answers`` calls, plan
  cache and per-relation index caches cleared/rebuilt before every call
  (what 20 unrelated one-shot CLI invocations would pay);
* ``cold_batch`` — one fresh :class:`CountingService` pass (the cache
  warms *within* the batch: the first job of each shape pays the plan
  search, its siblings hit);
* ``warm_batch`` — a second pass over the same service (every job hits).

The headline claim asserted here and recorded into
``BENCH_kernel.json`` by ``run_all.py``: ``warm_batch`` beats
``cold_sequential`` by **at least 2x** (in practice far more — the
decomposition search dominates these instances).  Worker-pool timings
(thread and process, 2 workers) ride along for the
sequential-vs-pooled trajectory.

Standalone usage (CI artifact)::

    PYTHONPATH=src python benchmarks/bench_batch_service.py -o bench-batch.json
"""

from __future__ import annotations

import time

from repro.counting.engine import clear_engine_memo, count_answers
from repro.db.database import Database
from repro.db.relation import Relation
from repro.service import CountingService, PlanCache
from repro.workloads.batch_jobs import batch_jobs

N_JOBS = 20
N_SHAPES = 4
SEED = 20260730
#: Shape sizing: large enough that the decomposition search dominates a
#: cold call (the thing the plan cache amortizes), small enough that the
#: whole benchmark stays in CI-smoke territory.
SHAPE_KWARGS = dict(n_variables=8, n_atoms=6, domain_size=6,
                    tuples_per_relation=24)


def _workload():
    return batch_jobs(n_jobs=N_JOBS, n_shapes=N_SHAPES, seed=SEED,
                      **SHAPE_KWARGS)


def _fresh_copy(database: Database) -> Database:
    """A content-equal database with completely cold caches."""
    return Database(
        Relation(relation.name, relation.arity, relation.rows)
        for relation in database.relations()
    )


def cold_sequential_seconds(jobs) -> tuple:
    """20 cold ``count_answers`` calls: all caches dropped per call."""
    counts = []
    started = time.perf_counter()
    for job in jobs:
        clear_engine_memo()  # drops the plan cache and the search memo
        database = _fresh_copy(job.database)
        counts.append(
            count_answers(job.query, database, **job.engine_kwargs()).count
        )
    return time.perf_counter() - started, counts


def batch_seconds(service: CountingService, jobs) -> tuple:
    started = time.perf_counter()
    results = service.run_batch(jobs)
    return time.perf_counter() - started, [r.count for r in results]


def snapshot() -> dict:
    """The benchmark's JSON snapshot (merged into ``BENCH_kernel.json``)."""
    jobs = _workload()
    cold_seq, expected = cold_sequential_seconds(jobs)

    service = CountingService(workers=0, plan_cache=PlanCache())
    cold_batch, batch_counts = batch_seconds(service, jobs)
    warm_batch, warm_counts = batch_seconds(service, jobs)
    assert batch_counts == expected and warm_counts == expected

    pooled = {}
    for mode in ("thread", "process"):
        with CountingService(workers=2, mode=mode) as pooled_service:
            pooled_cold, pooled_counts = batch_seconds(pooled_service, jobs)
        assert pooled_counts == expected
        pooled[f"{mode}_pool_cold_seconds"] = round(pooled_cold, 4)

    warm_speedup = round(cold_seq / max(warm_batch, 1e-9), 2)
    return {
        "workload": f"{N_JOBS} jobs / {N_SHAPES} shapes "
                    f"(batch_jobs seed={SEED})",
        "cold_sequential_seconds": round(cold_seq, 4),
        "cold_batch_seconds": round(cold_batch, 4),
        "warm_batch_seconds": round(warm_batch, 4),
        "cold_batch_speedup": round(cold_seq / max(cold_batch, 1e-9), 2),
        "warm_batch_speedup": warm_speedup,
        "meets_2x_bar": warm_speedup >= 2.0,
        "plan_cache": service.plan_cache.stats(),
        **pooled,
    }


# ----------------------------------------------------------------------
# pytest entry points (run by benchmarks/run_all.py's file loop)
# ----------------------------------------------------------------------
def test_warm_cache_batch_at_least_2x_faster():
    """The ISSUE 2 acceptance bar: warm batch >= 2x over cold sequential."""
    jobs = _workload()
    cold_seq, expected = cold_sequential_seconds(jobs)
    service = CountingService(workers=0, plan_cache=PlanCache())
    _, first_counts = batch_seconds(service, jobs)
    warm, warm_counts = batch_seconds(service, jobs)
    assert first_counts == expected and warm_counts == expected
    assert cold_seq >= 2.0 * warm, (
        f"warm batch {warm:.3f}s not 2x faster than cold sequential "
        f"{cold_seq:.3f}s"
    )


def test_pooled_batches_agree_with_sequential():
    jobs = _workload()
    inline = CountingService(workers=0).run_batch(jobs)
    for mode in ("thread", "process"):
        with CountingService(workers=2, mode=mode) as service:
            pooled = service.run_batch(jobs)
        assert [r.count for r in pooled] == [r.count for r in inline]


if __name__ == "__main__":  # pragma: no cover - CI artifact entry point
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="bench-batch.json")
    args = parser.parse_args()
    result = snapshot()
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))
    if not result["meets_2x_bar"]:
        print("FAILED: warm batch is not >= 2x faster than cold sequential",
              file=sys.stderr)
        sys.exit(1)
