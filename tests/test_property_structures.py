"""Property-based tests on the structural substrates.

Algebra laws for substitution sets, agreement of the two acyclicity
procedures, core idempotence, frontier invariants, and consistency
properties — the invariants the counting algorithms silently rely on.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consistency.pairwise import is_pairwise_consistent, pairwise_consistency
from repro.db.algebra import SubstitutionSet
from repro.homomorphism.core import core, is_core
from repro.homomorphism.solver import homomorphically_equivalent
from repro.hypergraph.acyclicity import is_acyclic, join_tree
from repro.hypergraph.components import component_frontiers, components
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.terms import Variable
from repro.workloads.random_instances import random_query

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

VARS = [Variable(f"V{i}") for i in range(6)]


def _substitution_sets(seed, count=2, shared=True):
    rng = random.Random(seed)
    result = []
    pool = VARS[:4]
    for index in range(count):
        size = rng.randrange(1, 4)
        schema = rng.sample(pool, size)
        if shared and index > 0 and not set(schema) & set(result[0].schema):
            schema.append(result[0].schema[0])
        rows = {
            tuple(rng.randrange(4) for _ in schema)
            for _ in range(rng.randrange(0, 8))
        }
        result.append(SubstitutionSet(tuple(schema), rows))
    return result


def _hypergraphs(seed):
    rng = random.Random(seed)
    edges = [
        frozenset(rng.sample(VARS, rng.randrange(1, 4)))
        for _ in range(rng.randrange(1, 6))
    ]
    return Hypergraph([], edges)


class TestAlgebraLaws:
    @given(seed=st.integers(0, 9999))
    @settings(**SETTINGS)
    def test_join_commutative(self, seed):
        left, right = _substitution_sets(seed)
        assert left.join(right) == right.join(left)

    @given(seed=st.integers(0, 9999))
    @settings(**SETTINGS)
    def test_join_associative(self, seed):
        a, b, c = _substitution_sets(seed, count=3)
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(seed=st.integers(0, 9999))
    @settings(**SETTINGS)
    def test_semijoin_is_projected_join(self, seed):
        left, right = _substitution_sets(seed)
        assert left.semijoin(right) == \
            left.join(right).project(left.schema)

    @given(seed=st.integers(0, 9999))
    @settings(**SETTINGS)
    def test_semijoin_idempotent(self, seed):
        left, right = _substitution_sets(seed)
        once = left.semijoin(right)
        assert once.semijoin(right) == once

    @given(seed=st.integers(0, 9999))
    @settings(**SETTINGS)
    def test_projection_monotone_in_schema(self, seed):
        (s,) = _substitution_sets(seed, count=1)
        partial = s.project(s.schema[:1])
        assert len(partial) <= len(s)


class TestHypergraphInvariants:
    @given(seed=st.integers(0, 9999))
    @settings(**SETTINGS)
    def test_gyo_agrees_with_join_tree(self, seed):
        h = _hypergraphs(seed)
        assert (join_tree(h) is not None) == is_acyclic(h)

    @given(seed=st.integers(0, 9999))
    @settings(**SETTINGS)
    def test_components_partition_non_banned_nodes(self, seed):
        h = _hypergraphs(seed)
        rng = random.Random(seed + 1)
        banned = frozenset(rng.sample(VARS, rng.randrange(0, 4)))
        comps = components(h, banned)
        union = set()
        for comp in comps:
            assert not comp & banned
            assert not comp & union  # pairwise disjoint
            union |= comp
        assert union == set(h.nodes) - banned

    @given(seed=st.integers(0, 9999))
    @settings(**SETTINGS)
    def test_frontiers_are_subsets_of_banned(self, seed):
        h = _hypergraphs(seed)
        rng = random.Random(seed + 2)
        banned = frozenset(rng.sample(VARS, rng.randrange(0, 4)))
        for comp, frontier in component_frontiers(h, banned).items():
            assert frontier <= banned


class TestCoreInvariants:
    @given(seed=st.integers(0, 9999))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_core_is_idempotent_and_equivalent(self, seed):
        query = random_query(4, 3, n_symbols=2, seed=seed)
        reduced = core(query)
        assert is_core(reduced)
        assert homomorphically_equivalent(query, reduced)
        assert reduced.atoms <= query.atoms


class TestConsistencyInvariants:
    @given(seed=st.integers(0, 9999))
    @settings(**SETTINGS)
    def test_pairwise_consistency_is_fixpoint(self, seed):
        sets = _substitution_sets(seed, count=3)
        relations = {f"r{i}": s for i, s in enumerate(sets)}
        reduced = pairwise_consistency(relations)
        assert is_pairwise_consistent(reduced)
        assert pairwise_consistency(reduced) == reduced

    @given(seed=st.integers(0, 9999))
    @settings(**SETTINGS)
    def test_reduction_only_removes_tuples(self, seed):
        sets = _substitution_sets(seed, count=3)
        relations = {f"r{i}": s for i, s in enumerate(sets)}
        reduced = pairwise_consistency(relations)
        for name in relations:
            assert reduced[name].rows <= relations[name].rows


class TestDotRenderInvariants:
    """Structural invariants of the DOT emitters on random queries."""

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=15, deadline=None)
    def test_query_dot_mentions_every_variable(self, seed):
        from repro.hypergraph.render import query_to_dot
        from repro.workloads.random_instances import random_query

        query = random_query(5, 4, seed=seed)
        dot = query_to_dot(query)
        assert dot.startswith("graph ")
        assert dot.rstrip().endswith("}")
        for variable in query.variables:
            assert f'"{variable.name}"' in dot

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=15, deadline=None)
    def test_free_variables_double_circled(self, seed):
        from repro.hypergraph.render import query_to_dot
        from repro.workloads.random_instances import random_query

        query = random_query(5, 4, seed=seed)
        dot = query_to_dot(query)
        for variable in query.free_variables:
            assert f'"{variable.name}" [shape=doublecircle];' in dot
