"""Tests for counting under updates (:mod:`repro.dynamic`)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting.acyclic import count_acyclic
from repro.db import Database
from repro.dynamic import Delete, IncrementalCounter, Insert, apply_update
from repro.exceptions import DatabaseError, NotAcyclicError
from repro.query import parse_query


class TestApplyUpdate:
    def test_insert_adds_row(self):
        database = Database.from_dict({"r": [(1, 2)]})
        updated = apply_update(database, Insert("r", (3, 4)))
        assert (3, 4) in updated["r"]
        assert (3, 4) not in database["r"]  # original untouched

    def test_delete_removes_row(self):
        database = Database.from_dict({"r": [(1, 2), (3, 4)]})
        updated = apply_update(database, Delete("r", (1, 2)))
        assert (1, 2) not in updated["r"]

    def test_duplicate_insert_rejected(self):
        database = Database.from_dict({"r": [(1, 2)]})
        with pytest.raises(DatabaseError):
            apply_update(database, Insert("r", (1, 2)))

    def test_missing_delete_rejected(self):
        database = Database.from_dict({"r": [(1, 2)]})
        with pytest.raises(DatabaseError):
            apply_update(database, Delete("r", (9, 9)))

    def test_arity_mismatch_rejected(self):
        database = Database.from_dict({"r": [(1, 2)]})
        with pytest.raises(DatabaseError):
            apply_update(database, Insert("r", (1, 2, 3)))

    def test_unknown_relation_rejected(self):
        database = Database.from_dict({"r": [(1, 2)]})
        with pytest.raises(DatabaseError):
            apply_update(database, Insert("zzz", (1,)))


class TestIncrementalCounter:
    QUERY = parse_query("ans(A, B, C) :- r(A, B), s(B, C)")

    def database(self):
        return Database.from_dict({
            "r": [(1, 10), (2, 10), (3, 11)],
            "s": [(10, 5), (11, 5), (11, 6)],
        })

    def test_initial_count(self):
        counter = IncrementalCounter(self.QUERY, self.database())
        assert counter.count == count_acyclic(self.QUERY, self.database())

    def test_insert_updates_count(self):
        database = self.database()
        counter = IncrementalCounter(self.QUERY, database)
        update = Insert("s", (10, 7))
        counter.apply(update)
        assert counter.count == count_acyclic(
            self.QUERY, apply_update(database, update)
        )

    def test_delete_updates_count(self):
        database = self.database()
        counter = IncrementalCounter(self.QUERY, database)
        update = Delete("r", (1, 10))
        counter.apply(update)
        assert counter.count == count_acyclic(
            self.QUERY, apply_update(database, update)
        )

    def test_irrelevant_insert_no_change(self):
        # A row that matches no join partner leaves the count unchanged.
        database = self.database()
        counter = IncrementalCounter(self.QUERY, database)
        before = counter.count
        counter.apply(Insert("r", (9, 99)))
        assert counter.count == before

    def test_quantified_query_rejected(self):
        query = parse_query("ans(A) :- r(A, B), s(B, C)")
        with pytest.raises(NotAcyclicError):
            IncrementalCounter(query, self.database())

    def test_count_to_zero_and_back(self):
        database = Database.from_dict({"r": [(1, 10)], "s": [(10, 5)]})
        counter = IncrementalCounter(self.QUERY, database)
        assert counter.count == 1
        counter.apply(Delete("s", (10, 5)))
        assert counter.count == 0
        counter.apply(Insert("s", (10, 6)))
        assert counter.count == 1

    def test_shared_bag_atoms(self):
        # Two atoms over the same variable set share one bag.
        query = parse_query("ans(A, B) :- r(A, B), s(A, B)")
        database = Database.from_dict({
            "r": [(1, 2), (3, 4)], "s": [(1, 2), (5, 6)],
        })
        counter = IncrementalCounter(query, database)
        assert counter.count == 1
        counter.apply(Insert("s", (3, 4)))
        assert counter.count == 2

    def test_repeated_relation_symbol(self):
        query = parse_query("ans(A, B, C) :- e(A, B), e(B, C)")
        database = Database.from_dict({"e": [(1, 2), (2, 3)]})
        counter = IncrementalCounter(query, database)
        assert counter.count == 1  # 1 -> 2 -> 3
        counter.apply(Insert("e", (3, 4)))
        updated = apply_update(
            Database.from_dict({"e": [(1, 2), (2, 3)]}),
            Insert("e", (3, 4)),
        )
        assert counter.count == count_acyclic(query, updated)

    def test_constant_pattern_atom(self):
        query = parse_query("ans(A) :- r(A, 'blue')")
        database = Database.from_dict({
            "r": [(1, "blue"), (2, "red")],
        })
        counter = IncrementalCounter(query, database)
        assert counter.count == 1
        counter.apply(Insert("r", (3, "blue")))
        assert counter.count == 2
        counter.apply(Insert("r", (4, "green")))  # pattern mismatch
        assert counter.count == 2

    def test_repeated_variable_atom(self):
        query = parse_query("ans(A) :- loop(A, A)")
        database = Database.from_dict({"loop": [(1, 1), (1, 2)]})
        counter = IncrementalCounter(query, database)
        assert counter.count == 1
        counter.apply(Insert("loop", (2, 2)))
        assert counter.count == 2

    def test_apply_many(self):
        database = self.database()
        counter = IncrementalCounter(self.QUERY, database)
        updates = [Insert("s", (10, 7)), Delete("r", (3, 11))]
        counter.apply_many(updates)
        for update in updates:
            database = apply_update(database, update)
        assert counter.count == count_acyclic(self.QUERY, database)

    def test_disconnected_query_components_multiply(self):
        query = parse_query("ans(A, B) :- r(A), s(B)")
        database = Database.from_dict({"r": [(1,), (2,)], "s": [(5,)]})
        counter = IncrementalCounter(query, database)
        assert counter.count == 2
        counter.apply(Insert("s", (6,)))
        assert counter.count == 4


class TestRandomizedUpdateStreams:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_stream_matches_recount(self, seed):
        rng = random.Random(seed)
        query = parse_query("ans(A, B, C) :- r(A, B), s(B, C)")
        database = Database.from_dict({
            "r": [(rng.randrange(4), rng.randrange(4)) for _ in range(6)],
            "s": [(rng.randrange(4), rng.randrange(4)) for _ in range(6)],
        })
        counter = IncrementalCounter(query, database)
        for _ in range(30):
            relation = rng.choice(["r", "s"])
            existing = sorted(set(database[relation].rows), key=repr)
            if existing and rng.random() < 0.5:
                update = Delete(relation, rng.choice(existing))
            else:
                while True:
                    row = (rng.randrange(4), rng.randrange(4))
                    if row not in set(database[relation].rows):
                        break
                update = Insert(relation, row)
            database = apply_update(database, update)
            counter.apply(update)
            assert counter.count == count_acyclic(query, database)
