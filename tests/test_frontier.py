"""Unit tests for frontier hypergraphs (Definition 3.3, Examples 3.4, 4.1)."""

from repro.hypergraph.frontier import (
    all_frontiers,
    frontier_hypergraph,
    frontier_size,
)
from repro.homomorphism import colored_core
from repro.query import Variable, parse_query
from repro.workloads import q0, q1_cycle, q2_acyclic, qn1_chain

A, B, C = Variable("A"), Variable("B"), Variable("C")


class TestFrontierHypergraphQ0:
    def test_figure_1b_frontier_hypergraph(self):
        """FH(Q0, {A,B,C}) has hyperedges {A,B}, {B}, {B,C} (Figure 1(b))."""
        fh = frontier_hypergraph(q0())
        assert fh.edges == frozenset({
            frozenset({A, B}),
            frozenset({B}),
            frozenset({B, C}),
        })

    def test_example_3_4_colored_core_frontier(self):
        """FH(Q0', free) includes singleton color edges {A},{B},{C} plus
        Fr(E)={B}, Fr(I)={A,B}, Fr(D)=Fr(F)=Fr(H)={B,C} (Example 3.4)."""
        colored = colored_core(q0())
        fh = frontier_hypergraph(colored, q0().free_variables)
        assert frozenset({A}) in fh.edges
        assert frozenset({B}) in fh.edges
        assert frozenset({C}) in fh.edges
        assert frozenset({A, B}) in fh.edges
        assert frozenset({B, C}) in fh.edges


class TestFrontierHypergraphOthers:
    def test_example_4_1_cycle(self):
        """FH(Q1, {A,C}) contains the hyperedge {A,C} (Figure 8(c))."""
        fh = frontier_hypergraph(q1_cycle())
        assert frozenset({A, C}) in fh.edges

    def test_q2_frontier_is_free_clique_edge(self):
        """Every existential variable of Q^h_2 has the full free set as
        frontier (Example C.1)."""
        query = q2_acyclic(3)
        fronts = all_frontiers(query)
        assert fronts == frozenset({query.free_variables})

    def test_quantifier_free_query_has_no_frontiers(self):
        q = parse_query("ans(A, B) :- r(A, B)")
        assert all_frontiers(q) == frozenset()
        assert frontier_size(q) == 0


class TestFrontierSize:
    def test_qn1_frontier_size_is_n(self):
        """In Q^n_1 the frontier of Y1 is all of {X1..Xn} (Example A.2)."""
        for n in (2, 3, 4):
            assert frontier_size(qn1_chain(n)) == n

    def test_path_query_frontier_size(self):
        q = parse_query("ans(A, C) :- r(A, B), s(B, C)")
        assert frontier_size(q) == 2  # Fr(B) = {A, C}
