"""Tests for graph-pattern workloads (:mod:`repro.workloads.graph_patterns`)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import count_answers
from repro.counting.brute_force import count_brute_force
from repro.hypergraph.acyclicity import is_acyclic
from repro.workloads.graph_patterns import (
    clique_query,
    count_cliques_brute_force,
    cycle_query,
    gnp_graph,
    grid_graph,
    path_query,
    preferential_attachment_graph,
    star_query,
    triangle_per_vertex_query,
)


class TestPatternQueries:
    def test_star_shape(self):
        query = star_query(3)
        assert len(query.atoms) == 3
        assert {v.name for v in query.free_variables} == {"C"}
        assert is_acyclic(query.hypergraph())

    def test_star_needs_a_leaf(self):
        with pytest.raises(ValueError):
            star_query(0)

    def test_path_shape(self):
        query = path_query(4)
        assert len(query.atoms) == 4
        assert {v.name for v in query.free_variables} == {"X0", "X4"}
        assert is_acyclic(query.hypergraph())

    def test_path_without_free_endpoints_is_boolean(self):
        assert not path_query(2, free_endpoints=False).free_variables

    def test_cycle_shape(self):
        query = cycle_query(5, n_free=2)
        assert len(query.atoms) == 5
        assert len(query.free_variables) == 2
        assert not is_acyclic(query.hypergraph())

    def test_cycle_validation(self):
        with pytest.raises(ValueError):
            cycle_query(2)
        with pytest.raises(ValueError):
            cycle_query(4, n_free=5)

    def test_clique_atom_count(self):
        query = clique_query(4)
        assert len(query.atoms) == 12  # ordered pairs
        assert len(query.free_variables) == 4

    def test_clique_partial_free(self):
        query = clique_query(3, n_free=1)
        assert len(query.free_variables) == 1

    def test_triangle_per_vertex_free_variable(self):
        query = triangle_per_vertex_query()
        assert {v.name for v in query.free_variables} == {"A"}


class TestGraphGenerators:
    def test_gnp_extremes(self):
        empty = gnp_graph(5, 0.0, seed=0)
        assert len(empty["edge"]) == 0
        full = gnp_graph(4, 1.0, seed=0)
        assert len(full["edge"]) == 12  # all ordered non-loop pairs

    def test_gnp_undirected_is_symmetric(self):
        graph = gnp_graph(8, 0.4, directed=False, seed=1)
        edges = set(graph["edge"].rows)
        assert all((t, s) in edges for s, t in edges)

    def test_gnp_probability_validated(self):
        with pytest.raises(ValueError):
            gnp_graph(5, 1.5)

    def test_gnp_deterministic_with_seed(self):
        assert gnp_graph(10, 0.3, seed=7) == gnp_graph(10, 0.3, seed=7)

    def test_preferential_attachment_symmetric_connected(self):
        graph = preferential_attachment_graph(20, seed=2)
        edges = set(graph["edge"].rows)
        assert all((t, s) in edges for s, t in edges)
        nodes = {n for row in edges for n in row}
        assert nodes == set(range(20))

    def test_preferential_attachment_validates_size(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(1)

    def test_grid_edge_count(self):
        graph = grid_graph(2, 3)
        # 2x3 grid: 7 undirected edges -> 14 directed rows.
        assert len(graph["edge"]) == 14

    def test_grid_validates_dimensions(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)


class TestPatternCounting:
    GRAPH = gnp_graph(10, 0.35, seed=11)

    def test_star_counts_match_brute_force(self):
        query = star_query(2)
        assert count_answers(query, self.GRAPH).count == \
            count_brute_force(query, self.GRAPH)

    def test_path_counts_match_brute_force(self):
        query = path_query(3)
        assert count_answers(query, self.GRAPH).count == \
            count_brute_force(query, self.GRAPH)

    def test_cycle_counts_match_brute_force(self):
        query = cycle_query(4, n_free=2)
        assert count_answers(query, self.GRAPH).count == \
            count_brute_force(query, self.GRAPH)

    @pytest.mark.parametrize("size", [2, 3])
    def test_clique_counts_match_reference(self, size):
        query = clique_query(size)
        expected = count_cliques_brute_force(self.GRAPH, size)
        assert count_brute_force(query, self.GRAPH) == expected

    def test_triangle_per_vertex(self):
        graph = grid_graph(3, 3)  # bipartite: no triangles
        assert count_brute_force(triangle_per_vertex_query(), graph) == 0

    @given(seed=st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=8, deadline=None)
    def test_star_engine_equivalence_random_graphs(self, seed):
        graph = gnp_graph(8, 0.3, seed=seed)
        if len(graph["edge"]) == 0:
            return
        query = star_query(3)
        assert count_answers(query, graph).count == \
            count_brute_force(query, graph)
