"""A shared, thread-safe plan cache keyed by canonical query shape.

The engine's plans — acyclicity witnesses, #-hypertree decompositions,
GHDs, hybrid decompositions — depend only on the query's *shape* (its
canonical hypergraph fingerprint; the hybrid plan also depends on the
database contents).  A :class:`PlanCache` memoizes both the
canonicalization itself and every plan computed for a shape, so repeated
shapes — across the calls of one batch, across batches, and across
bijectively renamed queries — skip the decomposition search entirely.

One process-wide default cache (:func:`default_plan_cache`) backs plain
``count_answers`` calls; a :class:`~repro.service.CountingService` owns
its own instance so concurrent batches share plans deliberately.

Thread safety: lookups and stores take an internal lock; plan *computes*
run outside the lock, so two threads racing on the same fresh shape may
both compute it (the results are deterministic and the second store is a
no-op overwrite) but never block each other behind a long search.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Tuple

from ..query.canonical import CanonicalForm, canonical_form
from ..query.query import ConjunctiveQuery


class PlanCache:
    """Bounded, thread-safe memo for canonical forms and engine plans."""

    def __init__(self, plan_capacity: int = 1024,
                 canonical_capacity: int = 1024):
        self._lock = threading.RLock()
        self._plans: "OrderedDict[tuple, object]" = OrderedDict()
        self._forms: "OrderedDict[ConjunctiveQuery, CanonicalForm]" = \
            OrderedDict()
        self.plan_capacity = plan_capacity
        self.canonical_capacity = canonical_capacity
        self.hits = 0
        self.misses = 0
        self.canonical_hits = 0
        self.canonical_misses = 0

    # ------------------------------------------------------------------
    def canonical(self, query: ConjunctiveQuery) -> CanonicalForm:
        """The memoized canonical form of *query*."""
        with self._lock:
            cached = self._forms.get(query)
            if cached is not None:
                self._forms.move_to_end(query)
                self.canonical_hits += 1
                return cached
            self.canonical_misses += 1
        form = canonical_form(query)
        with self._lock:
            self._forms[query] = form
            if len(self._forms) > self.canonical_capacity:
                self._forms.popitem(last=False)
        return form

    def plan(self, key: tuple, compute: Callable[[], object]
             ) -> Tuple[object, bool]:
        """``(plan, was_cached)`` for *key*, computing on a miss.

        ``None`` is a legitimate plan (a failed search is exactly as
        expensive and as cacheable as a successful one), so presence is
        tracked by the key, not the value.
        """
        with self._lock:
            if key in self._plans:
                self._plans.move_to_end(key)
                self.hits += 1
                return self._plans[key], True
            self.misses += 1
        value = compute()
        with self._lock:
            self._plans[key] = value
            if len(self._plans) > self.plan_capacity:
                self._plans.popitem(last=False)
        return value, False

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every cached plan and canonical form (counters survive)."""
        with self._lock:
            self._plans.clear()
            self._forms.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def stats(self) -> Dict[str, int]:
        """A snapshot of the cache counters and sizes."""
        with self._lock:
            return {
                "plans": len(self._plans),
                "canonical_forms": len(self._forms),
                "hits": self.hits,
                "misses": self.misses,
                "canonical_hits": self.canonical_hits,
                "canonical_misses": self.canonical_misses,
            }


#: The process-wide cache behind plain ``count_answers`` calls.
_DEFAULT = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide default plan cache."""
    return _DEFAULT
