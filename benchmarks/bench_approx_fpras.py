"""E18 — Approximate counting: exact sampler, Monte Carlo, Karp–Luby.

Paper context (Section 1.3): when the frontier hypergraph is covered,
exact counting (and hence exact uniform sampling) is polynomial; when not,
FPRAS-style randomized schemes are the remaining option [ACJR21b, FGRZ22].

Measured here: (a) the uniform sampler's count equals the exact count and
its empirical distribution is flat; (b) naive Monte Carlo converges to the
truth with the predicted O(1/sqrt(n)) interval; (c) Karp–Luby estimates a
UCQ count within its confidence interval using only per-disjunct exact
counts plus sampling.
"""

from collections import Counter

import pytest

from repro.approx import (
    AnswerSampler,
    karp_luby_union_count,
    monte_carlo_count,
)
from repro.counting import count_brute_force
from repro.ucq import count_union_brute_force, parse_ucq
from repro.workloads.graph_patterns import gnp_graph, path_query

from conftest import report

GRAPH = gnp_graph(25, 0.15, seed=13)
QUERY = path_query(3)


@pytest.mark.benchmark(group="approx-fpras")
def test_sampler_count_and_uniformity(benchmark):
    sampler = AnswerSampler.for_query(QUERY, GRAPH)
    exact = count_brute_force(QUERY, GRAPH)
    assert len(sampler) == exact

    draws = benchmark(sampler.sample_many, 500)
    frequencies = Counter(
        tuple(sorted((v.name, value) for v, value in answer.items()))
        for answer in draws
    )
    # Every draw is a real answer; spread is wide (uniform, not collapsed).
    assert len(frequencies) > min(exact, 100) // 2
    report("sampler", exact=exact, distinct_in_500=len(frequencies))


@pytest.mark.benchmark(group="approx-fpras")
@pytest.mark.parametrize("samples", [100, 1000, 10000])
def test_monte_carlo_convergence(benchmark, samples):
    exact = count_brute_force(QUERY, GRAPH)
    estimate = benchmark(
        monte_carlo_count, QUERY, GRAPH, samples=samples, seed=1
    )
    assert estimate.covers(exact)
    report(
        "monte-carlo", samples=samples, exact=exact,
        estimate=round(estimate.estimate, 1),
        half_width=round(estimate.half_width, 1),
    )


@pytest.mark.benchmark(group="approx-fpras")
def test_karp_luby_union(benchmark):
    union = parse_ucq(
        "ans(X0, X3) :- edge(X0, X1), edge(X1, X2), edge(X2, X3) ; "
        "ans(X0, X3) :- edge(X0, X3), edge(X3, X0)"
    )
    exact = count_union_brute_force(union, GRAPH)
    estimate = benchmark(
        karp_luby_union_count, union, GRAPH, samples=1500, seed=2
    )
    assert estimate.covers(exact)
    report(
        "karp-luby", exact=exact,
        estimate=round(estimate.estimate, 1),
        overcount=estimate.overcount,
        per_disjunct=estimate.per_disjunct_counts,
    )
