"""Unit tests for #b-generalized hypertree decompositions (Section 6)."""

import pytest

from repro.db import Database
from repro.decomposition.hybrid import (
    evaluate_pseudo_free,
    find_hybrid_decomposition,
)
from repro.decomposition.sharp import find_sharp_hypertree_decomposition
from repro.query import Variable, parse_query
from repro.workloads import (
    d2_bar_database,
    q2_bar,
    q2_pseudo_free,
)


class TestExample65:
    """Example 6.5: barQ^h_2 has a width-2 #1-GHD with S = free + {Y0..Yh}."""

    def test_pure_structural_fails(self):
        assert find_sharp_hypertree_decomposition(q2_bar(2), 2) is None

    def test_paper_pseudo_free_set_gives_degree_1(self):
        h = 2
        query, database = q2_bar(h), d2_bar_database(h)
        hybrid = evaluate_pseudo_free(query, database, 2, q2_pseudo_free(h))
        assert hybrid is not None
        assert hybrid.degree == 1
        assert hybrid.width() <= 2

    def test_search_finds_degree_1(self):
        h = 2
        query, database = q2_bar(h), d2_bar_database(h)
        hybrid = find_hybrid_decomposition(query, database, 2)
        assert hybrid is not None
        assert hybrid.degree == 1
        # Z must stay existential: promoting it would blow the degree.
        assert Variable("Z") not in hybrid.pseudo_free

    def test_decomposition_covers_z_frontier(self):
        """With the Ys promoted, Fr(Z) = {X0, X1, Y1..Yh} must be covered
        by a vertex of the decomposition (Example 6.5)."""
        h = 2
        query, database = q2_bar(h), d2_bar_database(h)
        hybrid = evaluate_pseudo_free(query, database, 2, q2_pseudo_free(h))
        frontier = frozenset(
            {Variable("X0"), Variable("X1"),
             Variable("Y1"), Variable("Y2")}
        )
        assert any(frontier <= bag for bag in hybrid.sharp.tree.bags)


class TestSearchBehaviour:
    def test_pseudo_free_must_contain_free(self):
        query = q2_bar(1)
        database = d2_bar_database(1)
        with pytest.raises(ValueError):
            evaluate_pseudo_free(query, database, 2, frozenset())

    def test_max_degree_budget_respected(self):
        q = parse_query("ans(A) :- r(A, B), s(B, C)")
        db = Database.from_dict({
            "r": [(1, i) for i in range(5)],
            "s": [(i, j) for i in range(5) for j in range(3)],
        })
        hybrid = find_hybrid_decomposition(q, db, 2, max_degree=1000)
        assert hybrid is not None
        assert hybrid.degree <= 1000

    def test_quantifier_free_query_trivially_degree_1(self):
        q = parse_query("ans(A, B) :- r(A, B)")
        db = Database.from_dict({"r": [(1, 2), (3, 4)]})
        hybrid = find_hybrid_decomposition(q, db, 1)
        assert hybrid is not None
        assert hybrid.degree == 1
        assert hybrid.pseudo_free == q.free_variables

    def test_promotion_is_charged_in_the_degree(self):
        """Promoting variables is not free: the degree counts extensions of
        the *actual* free variables to the chi ∩ S relation (Def. 6.4(2)).
        With S = {A, B, C} the single-bag decomposition sees 3 extensions
        of A = 1."""
        q = parse_query("ans(A) :- r(A, B), s(B, C)")
        db = Database.from_dict({
            "r": [(1, 2), (1, 3)],
            "s": [(2, 7), (3, 8), (3, 9)],
        })
        full = frozenset(Variable(x) for x in "ABC")
        hybrid = evaluate_pseudo_free(q, db, 2, full)
        assert hybrid is not None
        assert hybrid.degree == 3
        # The search minimizes over all pseudo-free sets, so it can only do
        # at least as well as full promotion.
        best = find_hybrid_decomposition(q, db, 2)
        assert best is not None
        assert best.degree <= 3
