"""Tree decompositions and treewidth of primal graphs (paper, Section 5.6).

For bounded-arity classes, bounded (generalized) hypertree width coincides
with bounded treewidth of the primal graphs, and the trichotomy's middle and
bottom cases are phrased through the treewidth of frontier hypergraphs.  We
provide:

* :func:`exact_treewidth` — the classical Bodlaender–Fomin–Koster dynamic
  program over vertex subsets (exponential; fine up to ~18 vertices);
* :func:`min_fill_order` / :func:`treewidth_upper_bound` — the min-fill
  elimination heuristic, an upper bound for larger graphs;
* :func:`tree_decomposition_from_order` — bags from an elimination order,
  yielding a verified tree decomposition.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..hypergraph.acyclicity import JoinTree
from ..hypergraph.hypergraph import Hypergraph

Adjacency = Dict[object, Set]

#: Above this vertex count the exact DP is refused (2^n blowup).
EXACT_LIMIT = 18


def _adjacency(hypergraph: Hypergraph) -> Adjacency:
    return hypergraph.primal_adjacency()


def exact_treewidth(hypergraph: Hypergraph) -> int:
    """Exact treewidth of the primal graph (DP over subsets).

    ``tw(G) = f(V)`` with ``f(S) = min_{v in S} max(f(S \\ {v}), q(S \\ {v}, v))``
    where ``q(S', v)`` counts the vertices outside ``S' ∪ {v}`` reachable
    from ``v`` through ``S'`` — the degree ``v`` would have when eliminated
    after ``S'``.
    """
    adjacency = _adjacency(hypergraph)
    vertices = tuple(sorted(adjacency, key=str))
    n = len(vertices)
    if n == 0:
        return 0
    if n > EXACT_LIMIT:
        raise ValueError(
            f"exact treewidth limited to {EXACT_LIMIT} vertices, got {n}; "
            "use treewidth_upper_bound instead"
        )
    index = {v: i for i, v in enumerate(vertices)}
    neighbour_masks = [0] * n
    for v, neighbours in adjacency.items():
        for w in neighbours:
            neighbour_masks[index[v]] |= 1 << index[w]

    def q(mask_s: int, v: int) -> int:
        """Vertices outside ``S ∪ {v}`` reachable from v through S."""
        seen = 1 << v
        stack = [v]
        reached = 0
        while stack:
            current = stack.pop()
            for w in range(n):
                bit = 1 << w
                if not neighbour_masks[current] & bit or seen & bit:
                    continue
                seen |= bit
                if mask_s & bit:
                    stack.append(w)
                else:
                    reached += 1
        return reached

    @lru_cache(maxsize=None)
    def f(mask: int) -> int:
        if mask == 0:
            return -1  # width of the empty elimination prefix
        best = n
        remaining = mask
        while remaining:
            low = remaining & -remaining
            v = low.bit_length() - 1
            remaining ^= low
            rest = mask ^ low
            best = min(best, max(f(rest), q(rest, v)))
        return best

    return f((1 << n) - 1)


def min_fill_order(hypergraph: Hypergraph) -> List:
    """An elimination order by the min-fill heuristic."""
    adjacency = {v: set(ns) for v, ns in _adjacency(hypergraph).items()}
    order: List = []
    while adjacency:
        best_vertex, best_fill = None, None
        for v in sorted(adjacency, key=str):
            neighbours = adjacency[v]
            fill = sum(
                1
                for a in neighbours for b in neighbours
                if str(a) < str(b) and b not in adjacency[a]
            )
            if best_fill is None or fill < best_fill:
                best_vertex, best_fill = v, fill
        neighbours = adjacency.pop(best_vertex)
        for a in neighbours:
            adjacency[a].discard(best_vertex)
            adjacency[a].update(neighbours - {a})
        order.append(best_vertex)
    return order


def width_of_order(hypergraph: Hypergraph, order: Sequence) -> int:
    """Width induced by an elimination order (max clique-at-elimination - 1)."""
    adjacency = {v: set(ns) for v, ns in _adjacency(hypergraph).items()}
    width = 0
    for v in order:
        neighbours = adjacency.pop(v)
        width = max(width, len(neighbours))
        for a in neighbours:
            adjacency[a].discard(v)
            adjacency[a].update(neighbours - {a})
    return width


def treewidth_upper_bound(hypergraph: Hypergraph) -> int:
    """Min-fill upper bound on the treewidth."""
    return width_of_order(hypergraph, min_fill_order(hypergraph))


def treewidth(hypergraph: Hypergraph) -> int:
    """Exact treewidth when feasible, else the min-fill upper bound."""
    if len(hypergraph.nodes) <= EXACT_LIMIT:
        return exact_treewidth(hypergraph)
    return treewidth_upper_bound(hypergraph)


def tree_decomposition_from_order(hypergraph: Hypergraph, order: Sequence
                                  ) -> JoinTree:
    """A verified tree decomposition (as a join tree of bags) from an
    elimination order, by the standard fill-in construction."""
    adjacency = {v: set(ns) for v, ns in _adjacency(hypergraph).items()}
    bags: List[FrozenSet] = []
    eliminated_at: Dict[object, int] = {}
    for v in order:
        neighbours = adjacency.pop(v)
        bags.append(frozenset({v} | neighbours))
        eliminated_at[v] = len(bags) - 1
        for a in neighbours:
            adjacency[a].discard(v)
            adjacency[a].update(neighbours - {a})
    edges: List[Tuple[int, int]] = []
    position = {v: i for i, v in enumerate(order)}
    for i, v in enumerate(order):
        later = [w for w in bags[i] if w != v and position[w] > position[v]]
        if later:
            successor = min(later, key=lambda w: position[w])
            edges.append((i, eliminated_at[successor]))
    tree = JoinTree(tuple(bags), tuple(edges))
    if not tree.is_valid():  # pragma: no cover - construction is standard
        raise AssertionError("elimination order produced an invalid decomposition")
    return tree
