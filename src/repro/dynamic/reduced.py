"""Reduction-based maintenance for bounded-#htw queries (Theorem 3.7).

:class:`IncrementalCounter` maintains quantifier-free acyclic queries
only — the shapes whose join-tree DP is materializable per atom.  The
paper's Theorem 3.7 reduces *any* bounded-#htw counting instance to a
quantifier-free acyclic one counted over the decomposition's bag
relations; :class:`ReducedMaintainer` carries the [BKS17]-style delta
propagation **through that reduction**, so quantified and cyclic shapes
with a #-hypertree decomposition stop recounting on every update.

The reduction runs **once**, at construction:

1. find a :class:`~repro.decomposition.sharp.SharpDecomposition` (width
   iterative-deepening up to ``max_width``);
2. materialize per-bag **provenance**: every bag keeps its *parts* — the
   witness view's source atoms plus the hosted core atoms, each with its
   matched rows and mutable hash indexes — and a witness-count multiset
   ``counts[bag_row] = |sigma_{bag_row}(join of parts)|`` mapping base
   tuples to the bag rows they support;
3. build the reduced quantifier-free acyclic instance: one relation per
   bag holding the *globally consistent* (full-reduced) bag rows
   projected onto the free variables, counted by an inner
   :class:`IncrementalCounter`.

Each base-relation :class:`~repro.dynamic.updates.Insert` /
:class:`~repro.dynamic.updates.Delete` then translates into bag deltas:
a **delta join** of the single matched row against the bag's other parts
patches the witness counts of exactly the affected bags (occurrences of
a repeated symbol are processed one at a time, so self-joins telescope
correctly), and bag-membership flips are *recorded* as per-bag
added/removed row sets (flips that cancel within a batch net out to
nothing).  The next read folds those membership deltas into a
counting-semijoin :class:`~repro.consistency.delta.DeltaReducer`, which
re-establishes global consistency by propagating only through shared
keys whose per-edge support counter crossed zero — the changed-key
frontier — and reports exactly the bag rows whose *globally consistent*
(survivor) status flipped.  Per-bag projection-support counters turn
those survivor flips into fed-row deltas for the inner DP, repaired
row-wise through ``apply_batch`` — never a recount, never a pass over
resident rows, and nothing at all when updates cancelled out.

Global consistency still cannot be skipped: the projected bag family
only joins back to ``pi_free(Q'(D))`` when every bag is exactly
``pi_bag(Q'(D))`` first (the tp-covered property in the proof of
Theorem 3.7) — locally consistent bags can overcount after projection.
What *changed* (the PR 5 design re-ran two full semijoin passes over all
resident bag rows per dirty read) is how consistency is re-established:
the reducer maintains the same fixpoint incrementally, so a dirty read
now costs O(delta + frontier reached), independent of the resident
instance.  Only a checkpoint restore pays a full re-reduction — once, to
reseed the support counters the pickled envelope intentionally omits.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from ..consistency.delta import DeltaReducer
from ..consistency.local import CompiledDeltaReducer
from ..counting.compile import compiled_enabled
from ..db.algebra import _row_getter
from ..db.database import Database
from ..db.relation import Relation
from ..decomposition.sharp import (
    SharpDecomposition,
    find_sharp_hypertree_decomposition_up_to,
)
from ..exceptions import DecompositionNotFoundError
from ..query.atom import Atom
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable
from .maintainer import (
    CELL_BYTES,
    DEFAULT_REDUCED_WIDTH,
    VERTEX_BASE_BYTES,
    IncrementalCounter,
    _atom_match,
)
from .updates import Delete, Insert, Update

Row = Tuple[Hashable, ...]

#: Version of the *maintainable class* the session memoizes verdicts
#: against.  Version 1 was the quantifier-free acyclic probe only; a
#: ``False`` cached under it is stale now that reduction-based
#: maintenance exists and must be re-probed (see
#: :class:`~repro.service.shard.SessionShard`).
MAINTAINED_CLASS_VERSION = 2


class _DynPart:
    """One part of a bag's provenance: an atom occurrence with its
    matched rows and incrementally maintained hash indexes.

    Unlike :class:`~repro.db.algebra.SubstitutionSet` (immutable; every
    update would rebuild the frozen row set and cold-start its caches),
    a part mutates in place: ``add``/``remove`` patch the row set *and*
    every index built so far, so the delta joins of a long update stream
    keep probing warm indexes.
    """

    __slots__ = ("atom", "schema", "rows", "_indexes")

    def __init__(self, atom: Atom):
        self.atom = atom
        self.schema: Tuple[Variable, ...] = tuple(
            sorted(atom.variables, key=lambda v: v.name)
        )
        self.rows: Set[Row] = set()
        #: positions tuple -> {key row: set of rows}
        self._indexes: Dict[Tuple[int, ...], Dict[Row, Set[Row]]] = {}

    def positions(self, variables: Sequence[Variable]) -> Tuple[int, ...]:
        index = {v: i for i, v in enumerate(self.schema)}
        return tuple(index[v] for v in variables)

    def index_on(self, positions: Tuple[int, ...]) -> Dict[Row, Set[Row]]:
        cached = self._indexes.get(positions)
        if cached is not None:
            return cached
        key_of = _row_getter(positions)
        buckets: Dict[Row, Set[Row]] = {}
        for row in self.rows:
            buckets.setdefault(key_of(row), set()).add(row)
        self._indexes[positions] = buckets
        return buckets

    def add(self, row: Row) -> None:
        self.rows.add(row)
        for positions, index in self._indexes.items():
            index.setdefault(_row_getter(positions)(row), set()).add(row)

    def remove(self, row: Row) -> None:
        self.rows.discard(row)
        for positions, index in self._indexes.items():
            key = _row_getter(positions)(row)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]


class _BagState:
    """One bag of the reduced instance: provenance plus repair deltas."""

    __slots__ = ("schema", "parts", "counts", "free_schema", "free_positions",
                 "inner_symbol", "pending_added", "pending_removed",
                 "fed_support")

    def __init__(self, bag: FrozenSet[Variable], atoms: Sequence[Atom],
                 free: FrozenSet[Variable], inner_symbol: Optional[str]):
        self.schema: Tuple[Variable, ...] = tuple(
            sorted(bag, key=lambda v: v.name)
        )
        self.parts: List[_DynPart] = [_DynPart(atom) for atom in atoms]
        #: Witness multiset: bag row -> number of part-join witnesses.
        #: Membership in the bag relation is ``count > 0``; the counts
        #: are what make single-tuple deletes O(delta join), not a
        #: re-derivation of the whole bag.
        self.counts: Dict[Row, int] = {}
        self.free_schema: Tuple[Variable, ...] = tuple(
            v for v in self.schema if v in free
        )
        #: Positions of the free schema inside the bag schema, for the
        #: fed projection (``None`` = every column is free: identity).
        self.free_positions: Optional[Tuple[int, ...]] = (
            None if self.free_schema == self.schema else tuple(
                i for i, v in enumerate(self.schema) if v in free
            )
        )
        #: The reduced instance's relation symbol — ``None`` when the
        #: bag has no free variables (it then only gates emptiness).
        self.inner_symbol = inner_symbol
        #: Membership flips not yet folded into the delta reducer (the
        #: next read's frontier seed).  Disjoint; a flip that reverts
        #: within a batch cancels out of both.
        self.pending_added: Set[Row] = set()
        self.pending_removed: Set[Row] = set()
        #: Projection-support multiset over the *survivor* rows:
        #: ``fed_support[projected_row]`` = number of globally consistent
        #: bag rows projecting onto it.  Zero crossings are exactly the
        #: fed-row deltas for the inner DP; its key set is what the DP
        #: was fed (whenever the global-emptiness gate is open).  Only
        #: maintained for bags with an ``inner_symbol``.
        self.fed_support: Dict[Row, int] = {}


class _DeltaPlan:
    """A compiled per-``(bag, part)`` delta join.

    :func:`_fold_witnesses` re-derives, on *every* update, the fold
    order, the shared variables, and the key/output extractors of the
    same join — all functions of the part schemas, which are fixed for
    the maintainer's life.  This plan resolves them once; :meth:`fold`
    then only probes the parts' warm indexes and merges multiplicities.

    The fold order is static (greedy connectivity over schemas, smallest
    schema first) where the interpreted path re-sorts by live match-set
    size; the multiset semantics are order-independent, so the two paths
    agree exactly.  Holds extractor closures — never pickled; the
    maintainer rebuilds plans lazily after a checkpoint restore.
    """

    __slots__ = ("_steps", "_final")

    def __init__(self, seed_schema: Tuple[Variable, ...],
                 part_schemas: Sequence[Tuple[Variable, ...]],
                 keep: FrozenSet[Variable]):
        pending = sorted(range(len(part_schemas)),
                         key=lambda i: (len(part_schemas[i]), i))
        bound = set(seed_schema)
        ordered: List[int] = []
        while pending:
            position = next(
                (p for p, slot in enumerate(pending)
                 if bound & set(part_schemas[slot])), 0,
            )
            slot = pending.pop(position)
            ordered.append(slot)
            bound |= set(part_schemas[slot])
        schema = seed_schema
        steps = []
        for rank, slot in enumerate(ordered):
            part_schema = part_schemas[slot]
            part_vars = set(part_schema)
            needed = set(keep)
            for later in ordered[rank + 1:]:
                needed.update(part_schemas[later])
            shared = tuple(v for v in schema if v in part_vars)
            part_index = {v: i for i, v in enumerate(part_schema)}
            schema_index = {v: i for i, v in enumerate(schema)}
            combined = dict(schema_index)
            offset = len(schema)
            for i, v in enumerate(part_schema):
                combined.setdefault(v, offset + i)
            out_schema = tuple(sorted(
                (set(schema) | part_vars) & needed, key=lambda v: v.name
            ))
            steps.append((
                slot,
                tuple(part_index[v] for v in shared),
                _row_getter(tuple(schema_index[v] for v in shared)),
                _row_getter(tuple(combined[v] for v in out_schema)),
            ))
            schema = out_schema
        self._steps = tuple(steps)
        wanted = tuple(v for v in schema if v in keep)
        self._final = (None if wanted == schema else _row_getter(
            tuple({v: i for i, v in enumerate(schema)}[v] for v in wanted)
        ))

    def fold(self, counts: Dict[Row, int],
             parts: Sequence[_DynPart]) -> Dict[Row, int]:
        """Witness counts of ``pi_keep(counts |><| join of parts)``;
        *parts* is the same others list the interpreted fold receives."""
        for slot, part_positions, key_of, out_of in self._steps:
            if not counts:
                break
            index = parts[slot].index_on(part_positions)
            get_bucket = index.get
            folded: Dict[Row, int] = {}
            get = folded.get
            for row, multiplicity in counts.items():
                bucket = get_bucket(key_of(row))
                if not bucket:
                    continue
                for part_row in bucket:
                    out_row = out_of(row + part_row)
                    folded[out_row] = get(out_row, 0) + multiplicity
            counts = folded
        final = self._final
        if final is not None and counts:
            projected: Dict[Row, int] = {}
            get = projected.get
            for row, multiplicity in counts.items():
                out_row = final(row)
                projected[out_row] = get(out_row, 0) + multiplicity
            counts = projected
        return counts


class ReducedMaintainer:
    """Maintain ``count(Q, D)`` through the Theorem 3.7 reduction.

    Accepts any query with a #-hypertree decomposition of width
    ``<= max_width`` — in particular the quantified and cyclic shapes
    :class:`IncrementalCounter` rejects.  Raises
    :class:`~repro.exceptions.DecompositionNotFoundError` when the
    query's #-hypertree width exceeds the bound (the caller falls back
    to recounting through the engine).

    The public surface mirrors :class:`IncrementalCounter` (``count``,
    ``apply``, ``apply_batch``, ``estimated_bytes``), so
    :class:`~repro.dynamic.maintainer.SharedMaintainer` and
    :class:`~repro.dynamic.maintainer.MaintainerPool` — including
    checkpoint spill/restore and delta-journal replay — work on either
    without knowing which they hold.
    """

    def __init__(self, query: ConjunctiveQuery, database: Database,
                 decomposition: Optional[SharpDecomposition] = None,
                 max_width: int = DEFAULT_REDUCED_WIDTH):
        if decomposition is None:
            decomposition = find_sharp_hypertree_decomposition_up_to(
                query, max_width
            )
            if decomposition is None:
                raise DecompositionNotFoundError(
                    f"{query.name}: no #-hypertree decomposition of width "
                    f"<= {max_width}; reduction-based maintenance is not "
                    f"available (fall back to recounting)"
                )
        from ..counting.structural import host_core_atoms  # import cycle: lazy

        self.query = query
        self.tree = decomposition.tree
        free = query.free_variables
        # The same per-bag core-atom assignment exact_bag_relations
        # makes — shared code, so the two reductions cannot diverge.
        hosted = host_core_atoms(decomposition)
        views = decomposition.views
        self._bags: List[_BagState] = []
        #: relation symbol -> [(bag index, part index)] — the provenance
        #: translation table from base updates to affected parts.
        self._parts_by_relation: Dict[str, List[Tuple[int, int]]] = {}
        for index, (bag, view_name) in enumerate(
                zip(self.tree.bags, decomposition.bag_views)):
            atoms = list(views[view_name].source_atoms) + hosted[index]
            free_in_bag = bag & free
            symbol = f"bag{index}" if free_in_bag else None
            state = _BagState(bag, atoms, free, symbol)
            self._bags.append(state)
            for part_index, part in enumerate(state.parts):
                self._parts_by_relation.setdefault(
                    part.atom.relation, []
                ).append((index, part_index))
        # Repair state holding extractor closures — rebuilt lazily, and
        # dropped from pickled checkpoints by ``__getstate__``.  The
        # reducer's support counters are intentionally not checkpointed:
        # the first read after a restore reseeds them with one full
        # reduction (construction-shaped work), after which repair is
        # frontier-priced again.
        self._delta_plans: Optional[Dict[Tuple[int, int], _DeltaPlan]] = None
        self._delta_reducer: Optional[DeltaReducer] = None
        self._refreshes = 0
        self._load(database)
        self._dirty = True
        self._nonempty = False
        self._inner: Optional[IncrementalCounter] = None
        self._refresh()
        self._build_inner()

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_delta_plans"] = None
        state["_delta_reducer"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _load(self, database: Database) -> None:
        """Fill every part's match set and seed the witness counts."""
        for state in self._bags:
            for part in state.parts:
                relation = database[part.atom.relation]
                for db_row in relation:
                    matched = _atom_match(part.atom, db_row)
                    if matched is not None:
                        part.add(matched)
            seed_part = min(state.parts, key=lambda p: len(p.rows))
            others = [p for p in state.parts if p is not seed_part]
            seed = dict.fromkeys(seed_part.rows, 1)
            state.counts = _fold_witnesses(
                seed_part.schema, seed, others, frozenset(state.schema)
            )

    def _build_inner(self) -> None:
        """The reduced quantifier-free acyclic instance, counted by an
        inner :class:`IncrementalCounter` over the projected exact bags.

        Bags without free variables are dropped from the instance: under
        global consistency an empty-schema bag is ``{()}`` exactly when
        the full join is nonempty, so it can only gate emptiness — which
        the kept bags (all empty then) already report.  A query with no
        free variables at all keeps no bag; its 0-or-1 count comes from
        the ``_nonempty`` flag.
        """
        atoms = []
        relations = []
        for state in self._bags:
            if state.inner_symbol is None:
                continue
            atoms.append(Atom(state.inner_symbol, state.free_schema))
            relations.append(Relation(
                state.inner_symbol, len(state.free_schema),
                self._fed_target(state),
            ))
        if not atoms:
            self._inner = None
            return
        reduced_query = ConjunctiveQuery(
            frozenset(atoms), self.query.free_variables,
            name=f"reduced({self.query.name})",
        )
        self._inner = IncrementalCounter(reduced_query, Database(relations))

    # ------------------------------------------------------------------
    # Delta translation (base updates -> bag deltas)
    # ------------------------------------------------------------------
    def apply(self, update: Update) -> None:
        """Apply one base-relation insert/delete through the reduction."""
        self.apply_batch((update,))

    def apply_batch(self, updates: Sequence[Update]) -> None:
        """Apply a batch of base updates.

        Each update delta-joins its matched row against the other parts
        of every hosting bag and patches the witness counts in place;
        occurrences of a repeated relation symbol are updated one at a
        time so self-joins telescope exactly.  The (comparatively)
        expensive consistency/DP repair is deferred to the next read —
        a batch whose membership effects cancel costs no repair at all.
        """
        for update in updates:
            self._apply_one(update)

    def _apply_one(self, update: Update) -> None:
        sign = 1 if isinstance(update, Insert) else -1
        for bag_index, part_index in self._parts_by_relation.get(
                update.relation, ()):
            state = self._bags[bag_index]
            part = state.parts[part_index]
            matched = _atom_match(part.atom, update.row)
            if matched is None:
                continue
            others = [p for i, p in enumerate(state.parts)
                      if i != part_index]
            if compiled_enabled():
                plan = self._delta_plan(bag_index, part_index, state, part)
                deltas = plan.fold({matched: 1}, others)
            else:
                deltas = _fold_witnesses(
                    part.schema, {matched: 1}, others,
                    frozenset(state.schema)
                )
            counts = state.counts
            pending_added = state.pending_added
            pending_removed = state.pending_removed
            for bag_row, witnesses in deltas.items():
                old = counts.get(bag_row, 0)
                new = old + sign * witnesses
                if new:
                    counts[bag_row] = new
                else:
                    counts.pop(bag_row, None)
                if (old == 0) == (new == 0):
                    continue
                # Membership flipped: record the row for the next read's
                # frontier repair, cancelling a flip that just reverted.
                if new:
                    if bag_row in pending_removed:
                        pending_removed.discard(bag_row)
                    else:
                        pending_added.add(bag_row)
                else:
                    if bag_row in pending_added:
                        pending_added.discard(bag_row)
                    else:
                        pending_removed.add(bag_row)
                self._dirty = True
            if sign > 0:
                part.add(matched)
            else:
                part.remove(matched)

    def _delta_plan(self, bag_index: int, part_index: int,
                    state: _BagState, part: _DynPart) -> _DeltaPlan:
        """The compiled delta join for one ``(bag, part)`` pair, lowered
        on first use (and again after a checkpoint restore)."""
        plans = self._delta_plans
        if plans is None:
            plans = self._delta_plans = {}
        plan = plans.get((bag_index, part_index))
        if plan is None:
            plan = _DeltaPlan(
                part.schema,
                [p.schema for i, p in enumerate(state.parts)
                 if i != part_index],
                frozenset(state.schema),
            )
            plans[(bag_index, part_index)] = plan
        return plan

    # ------------------------------------------------------------------
    # Read path: exactness + row-wise DP repair
    # ------------------------------------------------------------------
    def _make_reducer(self) -> DeltaReducer:
        """Link the delta reducer for this tree — the compiled rendition
        (scalar-fused key extractors) unless ``REPRO_COMPILED=0``."""
        factory = CompiledDeltaReducer if compiled_enabled() else DeltaReducer
        return factory([state.schema for state in self._bags], self.tree)

    def _fed_target(self, state: _BagState) -> FrozenSet[Row]:
        """What the inner DP should hold for one bag right now: the
        supported projected rows while the global-emptiness gate is
        open, nothing otherwise (``full_reducer``'s empty propagation —
        one empty reduced bag empties every fed relation)."""
        if not self._nonempty:
            return frozenset()
        return frozenset(state.fed_support)

    def _project_changes(self, state: _BagState,
                         added: FrozenSet[Row], removed: FrozenSet[Row],
                         ) -> Tuple[Set[Row], Set[Row]]:
        """Fold one bag's survivor diff into its projection-support
        multiset; returns the projected rows whose support crossed zero
        (the bag's fed-row delta).  O(|diff|), never O(survivors)."""
        support = state.fed_support
        if state.free_positions is None:
            # Identity projection: support is survivor membership.
            for row in removed:
                support.pop(row, None)
            for row in added:
                support[row] = 1
            return set(added), set(removed)
        project = _row_getter(state.free_positions)
        proj_added: Set[Row] = set()
        proj_removed: Set[Row] = set()
        for row in removed:
            key = project(row)
            value = support.get(key, 0) - 1
            if value > 0:
                support[key] = value
            else:
                support.pop(key, None)
                proj_removed.add(key)
        for row in added:
            key = project(row)
            value = support.get(key, 0) + 1
            support[key] = value
            if value == 1:
                # A key both dropped and re-supported this round never
                # left the fed set: cancel instead of double-reporting.
                if key in proj_removed:
                    proj_removed.discard(key)
                else:
                    proj_added.add(key)
        return proj_added, proj_removed

    def _refresh(self) -> None:
        """Re-establish global consistency and repair the inner DP.

        Steady state: fold each bag's recorded membership flips into the
        delta reducer — support-counter maintenance plus changed-key
        frontier propagation, O(delta + frontier) — and turn the
        returned survivor diffs into fed-row deltas through the
        projection-support counters.  Only two events cost a pass over
        resident rows: reseeding after a checkpoint restore (the reducer
        is rebuilt with one full reduction) and a flip of the
        global-emptiness gate (every fed relation empties or refills).
        """
        self._refreshes += 1
        reducer = self._delta_reducer
        deltas: List[Update] = []
        if reducer is None:
            # Reseed (construction, checkpoint restore, or an explicit
            # rebuild_consistency): full reduction over the resident bag
            # rows, then diff each bag's fed target against what the
            # inner DP was last known to hold — the pickled support
            # multiset plus gate flag describe that exactly.
            old_feds = [self._fed_target(state) for state in self._bags]
            reducer = self._delta_reducer = self._make_reducer()
            reducer.reduce([frozenset(state.counts) for state in self._bags])
            self._nonempty = not reducer.any_empty()
            for index, state in enumerate(self._bags):
                state.pending_added.clear()
                state.pending_removed.clear()
                if state.inner_symbol is None:
                    continue
                survivors = reducer.survivors(index)
                if state.free_positions is None:
                    state.fed_support = dict.fromkeys(survivors, 1)
                else:
                    project = _row_getter(state.free_positions)
                    support: Dict[Row, int] = {}
                    for row in survivors:
                        key = project(row)
                        support[key] = support.get(key, 0) + 1
                    state.fed_support = support
                target = self._fed_target(state)
                for row in target - old_feds[index]:
                    deltas.append(Insert(state.inner_symbol, row))
                for row in old_feds[index] - target:
                    deltas.append(Delete(state.inner_symbol, row))
        else:
            # Frontier repair: per dirty bag, apply the recorded
            # membership flips and merge the survivor diffs (a row's
            # status can move more than once across bags' applications;
            # the net sign is what matters).
            merged: Dict[int, Dict[Row, int]] = {}
            for index, state in enumerate(self._bags):
                if not (state.pending_added or state.pending_removed):
                    continue
                changes = reducer.apply(
                    index, state.pending_added, state.pending_removed
                )
                state.pending_added = set()
                state.pending_removed = set()
                for bag, (added, removed) in changes.items():
                    signs = merged.setdefault(bag, {})
                    for row in added:
                        value = signs.get(row, 0) + 1
                        if value:
                            signs[row] = value
                        else:
                            del signs[row]
                    for row in removed:
                        value = signs.get(row, 0) - 1
                        if value:
                            signs[row] = value
                        else:
                            del signs[row]
            was_nonempty = self._nonempty
            nonempty = not reducer.any_empty()
            if was_nonempty and not nonempty:
                # Gate closed: every fed relation empties.  Emit the
                # deletes against the *pre-update* support (what the DP
                # holds), then fold the survivor diffs in silently.
                for state in self._bags:
                    if state.inner_symbol is None:
                        continue
                    deltas.extend(
                        Delete(state.inner_symbol, row)
                        for row in state.fed_support
                    )
            for bag, signs in merged.items():
                state = self._bags[bag]
                if state.inner_symbol is None or not signs:
                    continue
                added = frozenset(
                    row for row, sign in signs.items() if sign > 0
                )
                removed = frozenset(
                    row for row, sign in signs.items() if sign < 0
                )
                proj_added, proj_removed = self._project_changes(
                    state, added, removed
                )
                if was_nonempty and nonempty:
                    deltas.extend(
                        Insert(state.inner_symbol, row) for row in proj_added
                    )
                    deltas.extend(
                        Delete(state.inner_symbol, row) for row in proj_removed
                    )
            if nonempty and not was_nonempty:
                # Gate opened: every fed relation fills with its full
                # (post-update) supported projection.
                for state in self._bags:
                    if state.inner_symbol is None:
                        continue
                    deltas.extend(
                        Insert(state.inner_symbol, row)
                        for row in state.fed_support
                    )
            self._nonempty = nonempty
        if deltas and self._inner is not None:
            self._inner.apply_batch(deltas)
        self._dirty = False

    def rebuild_consistency(self) -> None:
        """Drop the incremental reducer state, exactly as a checkpoint
        restore does: the next read pays one full re-reduction (plus a
        from-scratch fed diff) to reseed the support counters.  Exposed
        for the O(delta) benchmark's full-reduction baseline and the
        restore-path tests."""
        self._delta_reducer = None
        self._dirty = True

    def repair_stats(self) -> Dict[str, int]:
        """Cumulative repair-work counters: ``refreshes`` served, plus —
        once a reducer is linked — its frontier counters
        (``applied_rows``, ``key_flips``, ``rows_touched``,
        ``propagations``; see
        :attr:`~repro.consistency.delta.DeltaReducer.stats`).  The
        operation-counting differential leg bounds the per-read growth
        of these against the update's frontier, not the resident rows.
        Reducer counters restart from zero after a checkpoint restore
        (the reducer itself is rebuilt)."""
        stats = {"refreshes": self._refreshes}
        reducer = self._delta_reducer
        if reducer is not None:
            stats.update(reducer.stats)
        return stats

    @property
    def count(self) -> int:
        """The current answer count (repairing lazily if updates are
        pending)."""
        if self._dirty:
            self._refresh()
        if self._inner is None:
            return 1 if self._nonempty else 0
        return self._inner.count

    # ------------------------------------------------------------------
    # Introspection (the provenance property tests compare these
    # against a from-scratch rebuild)
    # ------------------------------------------------------------------
    def local_bag_rows(self) -> List[FrozenSet[Row]]:
        """Per bag: the locally maintained membership ``pi_bag(join of
        parts)`` — before the consistency passes."""
        return [frozenset(state.counts) for state in self._bags]

    def witness_counts(self) -> List[Dict[Row, int]]:
        """Per bag: a copy of the provenance witness multiset."""
        return [dict(state.counts) for state in self._bags]

    def fed_rows(self) -> List[FrozenSet[Row]]:
        """Per bag: the exact projected rows currently fed to the inner
        DP (refreshing first so pending deltas are folded in)."""
        if self._dirty:
            self._refresh()
        return [self._fed_target(state) for state in self._bags]

    def estimated_bytes(self) -> int:
        """Size estimate including the provenance layer.

        Parts (rows plus built indexes), witness counts, pending
        membership flips, and the projection-support multisets are
        priced at :data:`~repro.dynamic.maintainer.CELL_BYTES` per
        stored cell like the inner DP's own estimate; the delta
        reducer's state — per-row miss masks, per-edge row indexes, and
        the per-key support counters — is charged through
        :meth:`~repro.consistency.delta.DeltaReducer.estimated_cells`,
        so the :class:`~repro.dynamic.maintainer.MaintainerPool` byte
        budget sees the incremental-consistency machinery too; the inner
        counter adds its own figure.  O(#bags + #edges + #indexes)
        arithmetic.  A *read* can grow the maintainer (the lazy repair
        links/reseeds the reducer and enlarges the inner DP), so the
        pool re-samples after serving each count
        (:meth:`~repro.dynamic.maintainer.MaintainerPool.note_read`).
        """
        total = 0
        for state in self._bags:
            width = len(state.schema) + 1
            rows = (len(state.counts) + len(state.fed_support)
                    + len(state.pending_added) + len(state.pending_removed))
            for part in state.parts:
                part_width = len(part.schema) + 1
                part_rows = len(part.rows) * (1 + len(part._indexes))
                rows += (part_rows * part_width) // max(width, 1)
            total += VERTEX_BASE_BYTES + rows * width * CELL_BYTES
        if self._delta_reducer is not None:
            total += self._delta_reducer.estimated_cells() * CELL_BYTES
        if self._inner is not None:
            total += self._inner.estimated_bytes()
        return total


# ----------------------------------------------------------------------
# The multiset delta join
# ----------------------------------------------------------------------
def _fold_witnesses(schema: Tuple[Variable, ...], counts: Dict[Row, int],
                    parts: Sequence[_DynPart],
                    keep: FrozenSet[Variable]) -> Dict[Row, int]:
    """Witness counts of ``pi_keep(state |><| join of parts)``.

    *counts* maps rows over the sorted *schema* to multiplicities; each
    part is folded in with an index-driven hash join, projecting the
    intermediate onto ``keep`` plus the variables still needed by the
    remaining parts (dropped columns merge their witness counts — the
    multiset analogue of ``join_project``'s push-down, which is what
    keeps a delta join from materializing the full per-bag product).
    Parts are folded greedily by connectivity, smallest match set first,
    deferring cross products until unavoidable.
    """
    pending = sorted(parts, key=lambda p: len(p.rows))
    bound = set(schema)
    ordered: List[_DynPart] = []
    while pending:
        index = next(
            (i for i, part in enumerate(pending)
             if bound & set(part.schema)), 0,
        )
        part = pending.pop(index)
        ordered.append(part)
        bound |= set(part.schema)
    for fold_index, part in enumerate(ordered):
        if not counts:
            break
        needed = set(keep)
        for later in ordered[fold_index + 1:]:
            needed.update(later.schema)
        part_vars = set(part.schema)
        shared = tuple(v for v in schema if v in part_vars)
        index = part.index_on(part.positions(shared))
        out_schema = tuple(sorted(
            (set(schema) | part_vars) & needed, key=lambda v: v.name
        ))
        # Positions of the output columns in (state row + part row).
        combined = {v: i for i, v in enumerate(schema)}
        offset = len(schema)
        for i, v in enumerate(part.schema):
            combined.setdefault(v, offset + i)
        out_of = _row_getter(tuple(combined[v] for v in out_schema))
        key_of = _row_getter(
            tuple({v: i for i, v in enumerate(schema)}[v] for v in shared)
        )
        folded: Dict[Row, int] = {}
        for row, multiplicity in counts.items():
            bucket = index.get(key_of(row))
            if not bucket:
                continue
            for part_row in bucket:
                out_row = out_of(row + part_row)
                folded[out_row] = folded.get(out_row, 0) + multiplicity
        counts = folded
        schema = out_schema
    if tuple(v for v in schema if v in keep) != schema:
        # No parts consumed a column outside *keep* (e.g. a single-part
        # bag): project the remainder away, merging counts.
        wanted = tuple(v for v in schema if v in keep)
        out_of = _row_getter(
            tuple({v: i for i, v in enumerate(schema)}[v] for v in wanted)
        )
        projected: Dict[Row, int] = {}
        for row, multiplicity in counts.items():
            out_row = out_of(row)
            projected[out_row] = projected.get(out_row, 0) + multiplicity
        counts = projected
    return counts
