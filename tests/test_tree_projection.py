"""Unit tests for the tree-projection search engine (Theorem 3.6)."""

import random
from itertools import combinations

from repro.decomposition.tree_projection import (
    candidate_bags,
    find_min_cost_tree_projection,
    find_tree_projection,
    has_tree_projection,
    tree_projection,
)
from repro.hypergraph.acyclicity import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph, covers
from repro.query.terms import Variable

A, B, C, D, E = (Variable(x) for x in "ABCDE")


def hg(*edges):
    return Hypergraph([], [frozenset(e) for e in edges])


class TestCandidateBags:
    def test_subset_closure(self):
        bags = candidate_bags(hg({A, B}), {A, B})
        assert bags == frozenset({
            frozenset({A}), frozenset({B}), frozenset({A, B}),
        })

    def test_restriction_to_nodes(self):
        bags = candidate_bags(hg({A, B, C}), {A, B})
        assert frozenset({A, B}) in bags
        assert all(C not in bag for bag in bags)

    def test_no_closure_mode(self):
        bags = candidate_bags(hg({A, B, C}), {A, B, C}, subset_closure=False)
        assert bags == frozenset({frozenset({A, B, C})})


class TestTreeProjection:
    def test_self_projection_of_acyclic(self):
        h = hg({A, B}, {B, C})
        assert has_tree_projection(h, h)

    def test_cyclic_base_without_help(self):
        triangle = hg({A, B}, {B, C}, {C, A})
        assert not has_tree_projection(triangle, triangle)

    def test_cyclic_base_with_covering_edge(self):
        triangle = hg({A, B}, {B, C}, {C, A})
        helper = hg({A, B, C})
        tree = tree_projection(triangle, helper)
        assert tree is not None
        assert tree.is_valid()
        bag_hg = Hypergraph([], tree.bags)
        assert covers(triangle, bag_hg)
        assert covers(bag_hg, helper)
        assert is_acyclic(bag_hg)

    def test_four_cycle_needs_two_pair_views(self):
        square = hg({A, B}, {B, C}, {C, D}, {D, A})
        # Views over {A,B,C} and {A,C,D} absorb the square.
        assert has_tree_projection(square, hg({A, B, C}, {A, C, D}))
        # A single triple cannot.
        assert not has_tree_projection(square, hg({A, B, C}))

    def test_sandwich_property_always_verified(self):
        h1 = hg({A, B}, {B, C}, {C, D}, {D, A}, {A, C})
        h2 = hg({A, B, C}, {A, C, D}, {B, D})
        tree = tree_projection(h1, h2)
        if tree is not None:
            bag_hg = Hypergraph([], tree.bags)
            assert covers(h1, bag_hg) and covers(bag_hg, h2)

    def test_disconnected_base(self):
        h1 = hg({A, B}, {C, D})
        assert has_tree_projection(h1, h1)

    def test_empty_edges_ignored(self):
        h1 = Hypergraph([], [frozenset(), frozenset({A})])
        assert has_tree_projection(h1, hg({A}))


class TestAgainstExhaustiveSearch:
    """Cross-check the recursive search against a brute-force enumerator on
    tiny instances: enumerate subsets of candidate bags and test the
    sandwich conditions directly."""

    @staticmethod
    def _exhaustive(h1: Hypergraph, h2: Hypergraph) -> bool:
        bags = sorted(candidate_bags(h2, h1.nodes), key=sorted)
        max_size = len([e for e in h1.edges if e]) + 1
        for size in range(1, min(len(bags), max_size) + 1):
            for combo in combinations(bags, size):
                candidate = Hypergraph(h1.nodes, combo)
                if (covers(h1, candidate) and covers(candidate, h2)
                        and is_acyclic(candidate)):
                    return True
        return False

    def test_random_small_instances(self):
        rng = random.Random(7)
        variables = [Variable(f"V{i}") for i in range(5)]
        for trial in range(60):
            h1_edges = [
                frozenset(rng.sample(variables, rng.randrange(1, 4)))
                for _ in range(rng.randrange(1, 5))
            ]
            h2_edges = h1_edges + [
                frozenset(rng.sample(variables, rng.randrange(2, 5)))
                for _ in range(rng.randrange(0, 3))
            ]
            h1 = Hypergraph([], h1_edges)
            h2 = Hypergraph([], h2_edges)
            fast = has_tree_projection(h1, h2)
            slow = self._exhaustive(h1, h2)
            assert fast == slow, (h1.describe(), h2.describe())


class TestMinCostProjection:
    def test_min_bottleneck_prefers_cheap_bags(self):
        h1 = hg({A, B}, {B, C})
        bags = candidate_bags(hg({A, B}, {B, C}, {A, B, C}), {A, B, C})
        # Make the big bag expensive: forces the two-bag decomposition.
        cost = lambda bag: 100.0 if len(bag) == 3 else float(len(bag))
        result = find_min_cost_tree_projection(h1, bags, cost)
        assert result is not None
        bottleneck, tree = result
        assert bottleneck == 2.0
        assert all(len(bag) <= 2 for bag in tree.bags)

    def test_budget_excludes_everything(self):
        h1 = hg({A, B})
        bags = candidate_bags(h1, {A, B})
        result = find_min_cost_tree_projection(
            h1, bags, lambda bag: 5.0, cost_budget=1.0
        )
        assert result is None

    def test_decision_mode_finds_first(self):
        h1 = hg({A, B}, {B, C}, {C, A})
        bags = candidate_bags(hg({A, B, C}), {A, B, C})
        tree = find_tree_projection(h1, bags)
        assert tree is not None
