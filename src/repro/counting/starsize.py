"""Quantified star size and the Durand–Mengel method (Appendix A, [DM15]).

The *quantified star size* of ``Q`` is the maximum, over quantified
variables ``Y``, of the size of a maximum independent set (in the primal
graph of ``H_Q``) among the variables of the frontier
``Fr(Y, free(Q), H_Q)``.  Durand & Mengel's tractability criterion is
"bounded ghw *and* bounded quantified star size" — no cores involved.

Theorem A.3's proof shows a width-``k`` GHD plus star size ``l`` yield a
width-``k*l`` #-hypertree decomposition *without taking cores*; we realize
the DM counting method exactly that way: probe #-coverage of the *uncored*
colored query at width ``ghw * qss`` and count with Theorem 3.7's
algorithm.  Example A.2's family separates the two methods (its star size
grows with ``n`` while its #-hypertree width stays 1), which the benchmarks
reproduce.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Optional

from ..db.database import Database
from ..decomposition.sharp import find_sharp_hypertree_decomposition
from ..exceptions import DecompositionNotFoundError
from ..hypergraph.components import component_frontiers
from ..query.coloring import color
from ..query.query import ConjunctiveQuery
from .structural import count_with_decomposition


def maximum_independent_set_size(nodes: Iterable,
                                 adjacency: Dict[object, set]) -> int:
    """Exact maximum independent set among *nodes* (branch and bound).

    Frontier sets are small (bounded by the number of free variables), so a
    simple recursive search suffices.
    """
    members = sorted(set(nodes), key=str)

    def best(candidates: tuple) -> int:
        if not candidates:
            return 0
        head, *tail = candidates
        tail = tuple(tail)
        # Either skip head...
        without = best(tail)
        # ...or take it and discard its neighbours.
        kept = tuple(v for v in tail if v not in adjacency.get(head, ()))
        with_head = 1 + best(kept)
        return max(without, with_head)

    return best(tuple(members))


def quantified_star_size(query: ConjunctiveQuery) -> int:
    """The quantified star size of the query (Appendix A).

    Zero for quantifier-free queries (no frontiers to account for).
    """
    hypergraph = query.hypergraph()
    adjacency = hypergraph.primal_adjacency()
    frontiers = component_frontiers(hypergraph, query.free_variables)
    return max(
        (maximum_independent_set_size(frontier, adjacency)
         for frontier in frontiers.values()),
        default=0,
    )


def core_quantified_star_size(query: ConjunctiveQuery) -> int:
    """Star size of the (uncolored) core of ``color(Q)`` (Lemma A.4).

    Appendix A shows that taking colored cores *before* measuring the star
    size collapses the separation of Example A.2: a class has bounded
    #-generalized hypertree width iff the ghw **and** the star size of the
    cores of its colorings are bounded (Corollary A.5).  On Example A.2's
    chains the raw star size is ``ceil(n/2)`` while this quantity is 1.
    """
    from ..homomorphism.core import core_pair

    _, uncolored = core_pair(query)
    return quantified_star_size(uncolored)


def durand_mengel_parameters(query: ConjunctiveQuery,
                             max_width: Optional[int] = None) -> Dict[str, int]:
    """``(ghw, qss)`` of the query — the DM tractability parameters."""
    from ..decomposition.ghd import generalized_hypertree_width

    return {
        "ghw": generalized_hypertree_width(query.hypergraph(), max_width),
        "qss": quantified_star_size(query),
    }


def count_durand_mengel(query: ConjunctiveQuery, database: Database,
                        width: int, star_size: Optional[int] = None) -> int:
    """Counting via the DM route (Proposition A.1 / Theorem A.3).

    Uses the *uncored* colored query: a #-decomposition w.r.t.
    ``V^{width * qss}_Q`` must exist by Theorem A.3 when *width* bounds the
    ghw and the star size is ``qss``; the count is then produced by the
    structural algorithm.
    """
    if star_size is None:
        star_size = quantified_star_size(query)
    effective = max(1, width * max(1, star_size))
    decomposition = find_sharp_hypertree_decomposition(
        query, effective, colored=color(query)
    )
    if decomposition is None:
        raise DecompositionNotFoundError(
            f"no core-free #-decomposition of width {effective} for "
            f"{query.name}; ghw/star-size bounds violated?"
        )
    return count_with_decomposition(query, database, decomposition)


def star_size_of_frontier(query: ConjunctiveQuery,
                          frontier: FrozenSet) -> int:
    """Independent-set size of one frontier (diagnostics for the benches)."""
    adjacency = query.hypergraph().primal_adjacency()
    return maximum_independent_set_size(frontier, adjacency)
