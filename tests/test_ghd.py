"""Unit tests for generalized hypertree decompositions and widths."""

import pytest

from repro.decomposition.ghd import (
    find_ghd_join_tree,
    generalized_hypertree_width,
    ghd_of_query,
    is_width_witness,
    union_view_hypergraph,
)
from repro.exceptions import DecompositionNotFoundError
from repro.hypergraph.hypergraph import Hypergraph
from repro.query import Variable, parse_query
from repro.workloads import q0, q1_cycle, q2_acyclic, qn2_biclique

A, B, C, D = (Variable(x) for x in "ABCD")


def hg(*edges):
    return Hypergraph([], [frozenset(e) for e in edges])


class TestUnionViews:
    def test_width_1_is_base(self):
        h = hg({A, B}, {B, C})
        assert union_view_hypergraph(h, 1).edges == h.edges

    def test_width_2_adds_pair_unions(self):
        h = hg({A, B}, {B, C})
        assert frozenset({A, B, C}) in union_view_hypergraph(h, 2).edges


class TestWidths:
    def test_acyclic_width_1(self):
        assert generalized_hypertree_width(hg({A, B}, {B, C})) == 1

    def test_triangle_width_2(self):
        assert generalized_hypertree_width(hg({A, B}, {B, C}, {C, A})) == 2

    def test_q0_width_2(self):
        """Figure 2 exhibits a width-2 decomposition of H_Q0; width 1 is
        impossible (the query is cyclic)."""
        assert generalized_hypertree_width(q0().hypergraph(), max_width=3) == 2

    def test_q1_cycle_width_2(self):
        assert generalized_hypertree_width(q1_cycle().hypergraph()) == 2

    def test_q2_acyclic_width_1(self):
        """Q^h_2 is acyclic (Example C.1)."""
        assert generalized_hypertree_width(q2_acyclic(3).hypergraph()) == 1

    def test_biclique_width_grows(self):
        """ghw(Q^n_2) = n (proof of Theorem A.3)."""
        assert generalized_hypertree_width(qn2_biclique(2).hypergraph()) == 2
        assert generalized_hypertree_width(qn2_biclique(3).hypergraph()) == 3

    def test_max_width_exceeded_raises(self):
        with pytest.raises(DecompositionNotFoundError):
            generalized_hypertree_width(qn2_biclique(3).hypergraph(), max_width=2)

    def test_empty_hypergraph_width_0(self):
        assert generalized_hypertree_width(hg()) == 0


class TestWitnesses:
    def test_witness_verified_independently(self):
        h = q1_cycle().hypergraph()
        tree = find_ghd_join_tree(h, 2)
        assert tree is not None
        assert is_width_witness(tree, h, 2)
        assert not is_width_witness(tree, h, 1) or True  # width-2 bags may fit

    def test_find_ghd_none_below_width(self):
        assert find_ghd_join_tree(q1_cycle().hypergraph(), 1) is None

    def test_extra_cover_constraint(self):
        """Covering the frontier edge {A, C} of Q1 is impossible at width 1
        even though... the base is cyclic anyway; use a path base."""
        base = hg({A, B}, {B, C})
        extra = hg({A, C})
        assert find_ghd_join_tree(base, 1, extra_cover=extra) is None
        tree = find_ghd_join_tree(base, 2, extra_cover=extra)
        assert tree is not None
        assert any(frozenset({A, C}) <= bag for bag in tree.bags)


class TestGhdOfQuery:
    def test_labelled_decomposition(self):
        q = parse_query("ans(A) :- r(A, B), s(B, C), t(C, A)")
        decomposition = ghd_of_query(q, 2)
        assert decomposition is not None
        assert decomposition.width() <= 2
        assert decomposition.is_generalized_decomposition_of(q)

    def test_none_when_too_narrow(self):
        q = parse_query("ans(A) :- r(A, B), s(B, C), t(C, A)")
        assert ghd_of_query(q, 1) is None
