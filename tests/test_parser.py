"""Unit tests for the Datalog-style query parser."""

import pytest

from repro.exceptions import ParseError
from repro.query import Constant, Variable, parse_query

A, B, C = Variable("A"), Variable("B"), Variable("C")


class TestParsing:
    def test_basic_query(self):
        q = parse_query("ans(A, B) :- r(A, C), s(C, B)")
        assert q.free_variables == frozenset({A, B})
        assert q.relation_symbols == frozenset({"r", "s"})
        assert len(q.atoms) == 2

    def test_boolean_query(self):
        q = parse_query("ans() :- r(A, B)")
        assert q.free_variables == frozenset()

    def test_ampersand_separator(self):
        q = parse_query("ans(A) :- r(A, B) & s(B)")
        assert len(q.atoms) == 2

    def test_name_defaults_to_head(self):
        assert parse_query("myq(A) :- r(A)").name == "myq"
        assert parse_query("myq(A) :- r(A)", name="other").name == "other"

    def test_integer_constants(self):
        q = parse_query("ans(A) :- r(A, 3), s(-2, A)")
        atoms = {repr(a) for a in q.atoms}
        assert "r(A, 3)" in atoms
        assert "s(-2, A)" in atoms
        atom = next(a for a in q.atoms if a.relation == "r")
        assert atom.terms[1] == Constant(3)

    def test_quoted_constants(self):
        q = parse_query("ans(A) :- r(A, 'hello world'), s(A, \"x\")")
        constants = {c.value for a in q.atoms for c in a.constants()}
        assert constants == {"hello world", "x"}

    def test_lowercase_identifier_is_constant(self):
        q = parse_query("ans(A) :- r(A, rome)")
        atom = next(iter(q.atoms))
        assert atom.terms[1] == Constant("rome")

    def test_underscore_prefix_is_variable(self):
        q = parse_query("ans(A) :- r(A, _x)")
        assert Variable("_x") in q.variables

    def test_repeated_variables(self):
        q = parse_query("ans(A) :- r(A, A)")
        atom = next(iter(q.atoms))
        assert atom.terms == (A, A)


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "ans(A)",                      # missing body
        "ans(A) :- ",                  # empty body
        "ans(A) :- r(A",               # unclosed paren
        "ans(3) :- r(A)",              # constant in head
        "ans(A) :- r(A) garbage(B)",   # missing separator
        "ans(A) :- r(A,)",             # dangling comma
    ])
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse_query(bad)
