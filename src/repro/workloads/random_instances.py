"""Random conjunctive-query instance generators for tests and benchmarks.

The property-based tests compare every counting algorithm against brute
force over instances drawn from these generators; they are built to produce
queries of controllable shape (acyclic / cyclic, with/without existential
variables, repeated relation symbols) whose databases have non-trivial
answer sets.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..db.database import Database
from ..db.generators import correlated_database
from ..query.atom import Atom
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable


def random_query(n_variables: int, n_atoms: int, max_arity: int = 3,
                 n_free: Optional[int] = None, n_symbols: Optional[int] = None,
                 seed: Optional[int] = None) -> ConjunctiveQuery:
    """A random connected conjunctive query.

    Atoms are grown over a random spanning order so the query's hypergraph
    is connected; *n_symbols* below *n_atoms* forces repeated relation
    symbols (the non-simple regime that Section 5 is about).
    """
    rng = random.Random(seed)
    variables = [Variable(f"V{i}") for i in range(n_variables)]
    n_symbols = n_symbols if n_symbols is not None else n_atoms
    symbol_arity: dict = {}
    atoms: List[Atom] = []
    connected = [variables[0]]
    remaining = variables[1:]
    seen: set = set()
    stale_draws = 0
    while len(atoms) < n_atoms:
        symbol = f"r{rng.randrange(n_symbols)}"
        arity = symbol_arity.setdefault(symbol, rng.randrange(2, max_arity + 1))
        # Queries are atom *sets*: a duplicate draw would silently shrink
        # the query, so force a fresh variable in once draws go stale.
        force_fresh = stale_draws >= 20 and bool(remaining)
        terms = []
        terms.append(rng.choice(connected))
        for position in range(arity - 1):
            take_fresh = remaining and (
                rng.random() < 0.5 or (force_fresh and position == 0)
            )
            if take_fresh:
                fresh = remaining.pop(rng.randrange(len(remaining)))
                connected.append(fresh)
                terms.append(fresh)
            else:
                terms.append(rng.choice(connected))
        atom = Atom(symbol, tuple(terms))
        if atom in seen:
            stale_draws += 1
            if stale_draws > 200:  # variable pool exhausted: give up cleanly
                break
            continue
        seen.add(atom)
        stale_draws = 0
        atoms.append(atom)
    used = sorted({v for atom in atoms for v in atom.variables},
                  key=lambda v: v.name)
    if n_free is None:
        n_free = rng.randrange(0, len(used) + 1)
    free = frozenset(rng.sample(used, k=min(n_free, len(used))))
    return ConjunctiveQuery(frozenset(atoms), free, name="Qrand")


def random_acyclic_query(n_atoms: int, max_arity: int = 3,
                         n_free: Optional[int] = None,
                         seed: Optional[int] = None) -> ConjunctiveQuery:
    """A random alpha-acyclic query, built atom-by-atom join-tree style.

    Each new atom reuses a subset of the variables of one existing atom and
    adds fresh ones, which keeps the hypergraph acyclic by construction.
    """
    rng = random.Random(seed)
    counter = 0

    def fresh() -> Variable:
        nonlocal counter
        counter += 1
        return Variable(f"V{counter}")

    first_arity = rng.randrange(1, max_arity + 1)
    atoms: List[Atom] = [
        Atom("r0", tuple(fresh() for _ in range(first_arity)))
    ]
    for index in range(1, n_atoms):
        host = rng.choice(atoms)
        reuse_count = rng.randrange(0, len(host.variables) + 1)
        reused = rng.sample(list(host.variables), k=reuse_count)
        arity = max(1, rng.randrange(max(1, reuse_count),
                                     max_arity + 1))
        terms: List[Variable] = list(reused)
        while len(terms) < arity:
            terms.append(fresh())
        rng.shuffle(terms)
        atoms.append(Atom(f"r{index}", tuple(terms)))
    used = sorted({v for atom in atoms for v in atom.variables},
                  key=lambda v: v.name)
    if n_free is None:
        n_free = rng.randrange(0, len(used) + 1)
    free = frozenset(rng.sample(used, k=min(n_free, len(used))))
    return ConjunctiveQuery(frozenset(atoms), free, name="QrandAcyclic")


def random_instance(n_variables: int = 6, n_atoms: int = 5,
                    domain_size: int = 6, tuples_per_relation: int = 24,
                    acyclic: bool = False, seed: Optional[int] = None
                    ) -> Tuple[ConjunctiveQuery, Database]:
    """A (query, database) pair with a non-trivially satisfiable database."""
    rng = random.Random(seed)
    if acyclic:
        query = random_acyclic_query(n_atoms, seed=rng.randrange(2 ** 30))
    else:
        query = random_query(n_variables, n_atoms, seed=rng.randrange(2 ** 30))
    database = correlated_database(
        query, domain_size, tuples_per_relation,
        n_seeds=4, seed=rng.randrange(2 ** 30),
    )
    return query, database
