"""E21 — Ablation: elimination-order quality drives Inside-Out's cost.

Not a paper table: the design-choice ablation for the FAQ comparator.
Three order sources — greedy min-degree, greedy min-fill, and the exact
subset-DP optimum — are compared on a cyclic pattern family.  Claims
checked: all orders give the same (correct) count; the DP optimum's
induced width is never beaten; runtime tracks the width.
"""

import pytest

from repro.counting import count_brute_force
from repro.faq import (
    count_insideout,
    induced_width,
    min_degree_order,
    min_fill_order,
    optimal_elimination_order,
)
from repro.workloads.graph_patterns import cycle_query, gnp_graph

from conftest import report

GRAPH = gnp_graph(30, 0.2, seed=41)
QUERY = cycle_query(6, n_free=2)

ORDER_SOURCES = {
    "min_degree": min_degree_order,
    "min_fill": min_fill_order,
    "dp_optimal": optimal_elimination_order,
}


@pytest.mark.benchmark(group="faq-orders")
@pytest.mark.parametrize("source", sorted(ORDER_SOURCES))
def test_order_source(benchmark, source):
    order = ORDER_SOURCES[source](QUERY)
    width = induced_width(QUERY, order)
    optimal = induced_width(QUERY, optimal_elimination_order(QUERY))
    assert optimal <= width

    count = benchmark(count_insideout, QUERY, GRAPH, order)
    assert count == count_brute_force(QUERY, GRAPH)
    report("faq-order", source=source, width=width, optimal=optimal,
           count=count)
