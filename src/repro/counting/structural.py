"""Structural counting via #-decompositions (Theorem 3.7 / Theorem 1.3).

Given a #-decomposition of ``Q`` w.r.t. a view set with a legal database,
the paper's algorithm counts answers in polynomial time:

1. take the uncolored core ``Q'`` of ``color(Q)`` — it has the same answers
   as ``Q`` over the free variables ([GS13]);
2. materialize one relation per hyperedge (bag) of the tree projection from
   a covering view, and enforce every core atom inside some bag containing
   it;
3. enforce pairwise consistency.  Because the bags form an acyclic
   hypergraph, the two-pass full reducer along the join tree achieves global
   consistency, after which each bag relation is *exactly*
   ``pi_bag(Q'(D))`` — the tp-covered property of [GS17b];
4. restrict every bag to the free variables.  The #-decomposition guarantees
   the frontier of every [free]-component is inside some bag, which is
   precisely what makes the restricted, still-acyclic family join back to
   ``pi_free(Q'(D))`` (the component-replacement argument in the proof);
5. count the restricted acyclic quantifier-free instance with the join-tree
   dynamic program.

Total cost: polynomial in ``||Q||``, ``||D||`` and the decomposition size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..consistency.pairwise import full_reducer
from ..db.algebra import SubstitutionSet, join_project
from ..db.database import Database
from ..decomposition.sharp import (
    SharpDecomposition,
    find_sharp_hypertree_decomposition,
    find_sharp_hypertree_decomposition_up_to,
)
from ..exceptions import DecompositionNotFoundError
from ..hypergraph.acyclicity import JoinTree
from ..query.atom import Atom
from ..query.query import ConjunctiveQuery
from .acyclic import count_join_tree


def host_core_atoms(decomposition: SharpDecomposition
                    ) -> Dict[int, List[Atom]]:
    """Per bag index: the core atoms enforced inside that bag.

    Assigns every core atom one host bag that contains its variables
    (the tree projection covers ``H_Q'``, so a host always exists).
    Shared by the static counting path and the reduced maintainer —
    both must make the *same* assignment or maintained counts could
    drift from the engine's reduction.
    """
    tree = decomposition.tree
    hosted: Dict[int, List[Atom]] = {i: [] for i in range(len(tree.bags))}
    for atom in decomposition.core.atoms_sorted():
        host = next(
            (i for i, bag in enumerate(tree.bags)
             if atom.variable_set <= bag),
            None,
        )
        if host is None:  # pragma: no cover - guaranteed by Definition 1.4
            raise DecompositionNotFoundError(
                f"bag covering atom {atom!r} missing from decomposition"
            )
        hosted[host].append(atom)
    return hosted


def exact_bag_relations(decomposition: SharpDecomposition, database: Database
                        ) -> Tuple[List[SubstitutionSet], JoinTree]:
    """Steps 2-3: bag relations equal to ``pi_bag(Q'(D))`` exactly.

    Returns the globally consistent bag relations together with the join
    tree they live on.  Every core atom is enforced inside one host bag
    containing its variables, *fused into the bag's factorized join* — the
    bag relation is materialized once, as
    ``pi_bag(view parts |><| hosted atoms)`` with projections pushed
    inside, never as the full view instance.
    """
    tree = decomposition.tree
    views = decomposition.views
    hosted = host_core_atoms(decomposition)
    relations: List[SubstitutionSet] = []
    for index, (bag, view_name) in enumerate(
            zip(tree.bags, decomposition.bag_views)):
        parts = [
            SubstitutionSet.from_atom(atom, database[atom.relation])
            for atom in views[view_name].source_atoms
        ]
        parts.extend(
            SubstitutionSet.from_atom(atom, database[atom.relation])
            for atom in hosted[index]
        )
        relations.append(join_project(parts, bag))
    reduced = full_reducer(relations, tree)
    return reduced, tree


def count_with_decomposition(query: ConjunctiveQuery, database: Database,
                             decomposition: SharpDecomposition) -> int:
    """The Theorem 3.7 counting algorithm (no-promise given the witness)."""
    reduced, tree = exact_bag_relations(decomposition, database)
    free = query.free_variables
    projected = [relation.project(free) for relation in reduced]
    return count_join_tree(projected, tree)


def count_structural(query: ConjunctiveQuery, database: Database,
                     width: Optional[int] = None, max_width: int = 4,
                     **decomposition_kwargs) -> int:
    """End-to-end Theorem 1.3 pipeline: find a #-hypertree decomposition of
    the least width ``<= max_width`` (or exactly *width*) and count with it.

    Raises :class:`DecompositionNotFoundError` when the query's #-hypertree
    width exceeds the bound — the caller should fall back to the hybrid or
    degree-bounded algorithms.
    """
    if width is not None:
        decomposition = find_sharp_hypertree_decomposition(
            query, width, **decomposition_kwargs
        )
    else:
        decomposition = find_sharp_hypertree_decomposition_up_to(
            query, max_width, **decomposition_kwargs
        )
    if decomposition is not None:
        return count_with_decomposition(query, database, decomposition)
    raise DecompositionNotFoundError(
        f"{query.name} has no #-hypertree decomposition of width "
        f"<= {width if width is not None else max_width}"
    )
