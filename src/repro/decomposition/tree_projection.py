"""Tree projections (paper, Section 2; Theorem 3.6).

A *tree projection* of ``H1`` with respect to ``H2`` is an acyclic hypergraph
``Ha`` with ``H1 <= Ha <= H2``.  Deciding its existence is NP-hard in
general but fixed-parameter tractable in ``|nodes(H1)|`` ([GS17b], used by
Theorem 3.6); this module implements that FPT algorithm:

* candidate bags are the subsets of ``e ∩ nodes(H1)`` over hyperedges ``e``
  of ``H2`` (any bag of a tree projection can be restricted to ``nodes(H1)``
  and is contained in some ``H2`` edge, so this bag set is complete);
* a memoized recursive search in component normal form picks, for each
  subproblem ``(edges-to-cover, interface)``, a bag containing the interface
  and recurses on the [bag]-components of the remaining edges.

Each chosen bag is pruned to the variables of its subproblem, which both
shrinks the search and guarantees the connectedness condition of the
resulting join tree by construction; the result is verified anyway.

A min-bottleneck variant (:func:`find_min_cost_tree_projection`) minimizes
the maximum of a user-supplied bag cost over the decomposition's vertices —
the engine behind D-optimal decompositions (Theorem C.5) and the hybrid
search of Theorem 6.7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..exceptions import DecompositionError
from ..hypergraph.acyclicity import JoinTree
from ..hypergraph.hypergraph import Hypergraph

Bag = FrozenSet
EdgeSet = FrozenSet[FrozenSet]

#: Bags larger than this are not subset-expanded (the closure would explode);
#: only the full bag is kept.  All paper instances stay far below the limit.
SUBSET_CLOSURE_LIMIT = 14


def candidate_bags(view_hypergraph: Hypergraph, nodes: Iterable,
                   subset_closure: bool = True,
                   closure_limit: int = SUBSET_CLOSURE_LIMIT
                   ) -> FrozenSet[Bag]:
    """All candidate bags for a tree projection of a hypergraph on *nodes*.

    With *subset_closure* (the default, required for completeness of exact
    generalized-hypertree-width computation) every non-empty subset of
    ``e ∩ nodes`` is a candidate; edges whose restriction exceeds
    *closure_limit* contribute only the full restriction.
    """
    nodes = frozenset(nodes)
    bags: set = set()
    for edge in view_hypergraph.edges:
        base = frozenset(edge) & nodes
        if not base:
            continue
        bags.add(base)
        if subset_closure and len(base) <= closure_limit:
            members = sorted(base, key=str)
            size = len(members)
            for mask in range(1, 1 << size):
                bags.add(frozenset(
                    members[i] for i in range(size) if mask & (1 << i)
                ))
    return frozenset(bags)


@dataclass
class _TreeNode:
    bag: Bag
    children: List["_TreeNode"] = field(default_factory=list)


def _vars_of(edges: Iterable[FrozenSet]) -> FrozenSet:
    result: set = set()
    for edge in edges:
        result.update(edge)
    return frozenset(result)


def _split_components(edges: Iterable[FrozenSet], bag: Bag
                      ) -> List[Tuple[EdgeSet, FrozenSet]]:
    """[bag]-components of the given edges: (edge set, node set) pairs."""
    edges = list(edges)
    outside_vars = _vars_of(edges) - bag
    parent: Dict[object, object] = {v: v for v in outside_vars}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for edge in edges:
        visible = [v for v in edge if v not in bag]
        for i in range(len(visible) - 1):
            ra, rb = find(visible[i]), find(visible[i + 1])
            if ra != rb:
                parent[ra] = rb
    groups: Dict[object, List[FrozenSet]] = {}
    nodes: Dict[object, set] = {}
    for edge in edges:
        visible = [v for v in edge if v not in bag]
        root = find(visible[0])  # every remaining edge has a var outside bag
        groups.setdefault(root, []).append(edge)
        nodes.setdefault(root, set()).update(visible)
    return [
        (frozenset(groups[root]), frozenset(nodes[root]))
        for root in sorted(groups, key=str)
    ]


class _Searcher:
    """Shared memoized search used by both the decision and min-cost modes."""

    def __init__(self, bags: Iterable[Bag],
                 bag_cost: Optional[Callable[[Bag], float]] = None,
                 cost_budget: float = math.inf):
        self.bags = sorted(set(bags), key=lambda b: (-len(b), sorted(map(str, b))))
        self.bag_cost = bag_cost
        self.cost_budget = cost_budget
        self._memo: Dict[Tuple[EdgeSet, FrozenSet],
                         Optional[Tuple[float, _TreeNode]]] = {}
        self._cost_cache: Dict[Bag, float] = {}

    def _cost(self, bag: Bag) -> float:
        if self.bag_cost is None:
            return 0.0
        if bag not in self._cost_cache:
            self._cost_cache[bag] = self.bag_cost(bag)
        return self._cost_cache[bag]

    def solve(self, edges: EdgeSet, interface: FrozenSet
              ) -> Optional[Tuple[float, _TreeNode]]:
        """Best (min bottleneck cost) subtree covering *edges*, rooted at a
        bag containing *interface*; ``None`` if impossible."""
        key = (edges, interface)
        if key in self._memo:
            return self._memo[key]
        scope = _vars_of(edges) | interface
        component_vars = scope - interface
        best: Optional[Tuple[float, _TreeNode]] = None
        seen_effective: set = set()
        for raw_bag in self.bags:
            if not interface <= raw_bag:
                continue
            bag = raw_bag & scope
            if bag in seen_effective:
                continue
            seen_effective.add(bag)
            remaining = frozenset(e for e in edges if not e <= bag)
            if remaining and not (bag & component_vars):
                continue  # no progress: would recurse on the same subproblem
            cost = self._cost(bag)
            if cost > self.cost_budget:
                continue
            node = _TreeNode(bag)
            bottleneck = cost
            feasible = True
            for comp_edges, comp_nodes in _split_components(remaining, bag):
                child_interface = (_vars_of(comp_edges) & bag)
                sub = self.solve(comp_edges, child_interface)
                if sub is None:
                    feasible = False
                    break
                bottleneck = max(bottleneck, sub[0])
                node.children.append(sub[1])
            if not feasible:
                continue
            if self.bag_cost is None:
                self._memo[key] = (bottleneck, node)
                return self._memo[key]
            if best is None or bottleneck < best[0]:
                best = (bottleneck, node)
        self._memo[key] = best
        return best


def _to_join_tree(root: _TreeNode) -> JoinTree:
    bags: List[Bag] = []
    edges: List[Tuple[int, int]] = []

    def visit(node: _TreeNode) -> int:
        index = len(bags)
        bags.append(node.bag)
        for child in node.children:
            child_index = visit(child)
            edges.append((index, child_index))
        return index

    visit(root)
    return JoinTree(tuple(bags), tuple(edges))


def find_tree_projection(to_cover: Hypergraph, bags: Iterable[Bag]
                         ) -> Optional[JoinTree]:
    """A join tree of an acyclic hypergraph sandwiched between *to_cover* and
    the hypergraph whose (subset-closed) edges are *bags*; ``None`` if none
    exists.  The returned join tree's bag hypergraph is the tree projection.
    """
    edges = frozenset(e for e in to_cover.edges if e)
    if not edges:
        return JoinTree((frozenset(),), ())
    searcher = _Searcher(bags)
    result = searcher.solve(edges, frozenset())
    if result is None:
        return None
    tree = _to_join_tree(result[1])
    if not tree.is_valid():  # pragma: no cover - defensive
        raise DecompositionError("search produced an invalid join tree")
    return tree


def find_min_cost_tree_projection(to_cover: Hypergraph, bags: Iterable[Bag],
                                  bag_cost: Callable[[Bag], float],
                                  cost_budget: float = math.inf
                                  ) -> Optional[Tuple[float, JoinTree]]:
    """Tree projection minimizing the maximum bag cost (min-bottleneck).

    Bags whose cost exceeds *cost_budget* are discarded outright.  Returns
    ``(bottleneck_cost, join_tree)`` or ``None``.
    """
    edges = frozenset(e for e in to_cover.edges if e)
    if not edges:
        return 0.0, JoinTree((frozenset(),), ())
    searcher = _Searcher(bags, bag_cost=bag_cost, cost_budget=cost_budget)
    result = searcher.solve(edges, frozenset())
    if result is None:
        return None
    cost, node = result
    tree = _to_join_tree(node)
    if not tree.is_valid():  # pragma: no cover - defensive
        raise DecompositionError("search produced an invalid join tree")
    return cost, tree


def has_tree_projection(h1: Hypergraph, h2: Hypergraph,
                        subset_closure: bool = True) -> bool:
    """Does the pair ``(H1, H2)`` have a tree projection?"""
    return tree_projection(h1, h2, subset_closure=subset_closure) is not None


def tree_projection(h1: Hypergraph, h2: Hypergraph,
                    subset_closure: bool = True) -> Optional[JoinTree]:
    """Find a tree projection for ``(H1, H2)`` (or ``None``)."""
    bags = candidate_bags(h2, h1.nodes, subset_closure=subset_closure)
    return find_tree_projection(h1, bags)
