"""Streaming-session benchmark: warm-start process pools and maintained counts.

The two acceptance bars of ISSUE 3, asserted here and recorded into
``BENCH_kernel.json`` by ``run_all.py``:

* **warm pool >= 1.5x** — the batch acceptance workload (**20 jobs / 4
  shapes**) served by a *fresh* process pool whose workers warm-start
  from a populated persistent plan-cache directory must be at least
  1.5x faster than the same fresh pool starting cold (every worker
  re-paying the decomposition searches);
* **session >= 3x** — an interleaved update/count stream (one
  single-tuple update followed by ``SESSION_COUNTS_PER_UPDATE`` reads,
  repeated) served by a :class:`~repro.service.CountingSession`'s
  maintained path must beat recompute-per-count (``apply_update`` + a
  fresh ``count_answers`` per read) by at least 3x.  The stream is
  read-dominated on purpose: that is the serving regime the maintained
  path exists for (reads are O(1) dict lookups; recompute pays a full
  count per read).  Since the compiled execution tier landed,
  recompute-per-count is itself fast enough to win *write-heavy*
  streams — the crossover is real and this workload documents the side
  of it the maintainer owns.

Standalone usage (CI artifact)::

    PYTHONPATH=src python benchmarks/bench_session.py -o bench-session.json
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.counting.engine import count_answers
from repro.counting.plan_cache import (
    PLAN_CACHE_DIR_ENV,
    PlanCache,
    set_default_plan_cache,
)
from repro.db.database import Database
from repro.dynamic import Insert, apply_update
from repro.envknobs import isolated_repro_env
from repro.query.parser import parse_query
from repro.service import (
    CountRequest,
    CountingService,
    CountingSession,
    UpdateRequest,
)
from repro.workloads.batch_jobs import batch_jobs

N_JOBS = 20
N_SHAPES = 4
SEED = 20260731
#: Same sizing as bench_batch_service: the decomposition search dominates
#: a cold call, which is exactly what the persistent cache amortizes.
SHAPE_KWARGS = dict(n_variables=8, n_atoms=6, domain_size=6,
                    tuples_per_relation=24)
POOL_WORKERS = 2

#: Session workload: a maintainable star query — one update repairs one
#: leaf-to-root path while a recount re-joins every branch from scratch.
SESSION_BRANCHES = 5
SESSION_QUERY = parse_query(
    "ans(A, " + ", ".join(f"B{i}" for i in range(SESSION_BRANCHES)) + ") :- "
    + "hub(A), "
    + ", ".join(f"r{i}(A, B{i})" for i in range(SESSION_BRANCHES))
)
SESSION_ROUNDS = 40
#: Reads per update round.  Read-dominated on purpose (see the module
#: docstring): maintained reads are dict lookups, so the maintained
#: path's advantage scales with this; at 1:1 the compiled engine's
#: recompute now wins and the maintained path would lose its bar.
SESSION_COUNTS_PER_UPDATE = 12
SESSION_HUB = 40
SESSION_ROWS = 1500


def _workload():
    return batch_jobs(n_jobs=N_JOBS, n_shapes=N_SHAPES, seed=SEED,
                      **SHAPE_KWARGS)


# ----------------------------------------------------------------------
# Part 1: cold vs warm-started process pools
# ----------------------------------------------------------------------
def pool_seconds(jobs, cache_dir=None) -> tuple:
    """Wall-clock of one batch through a *fresh* process pool."""
    started = time.perf_counter()
    with CountingService(workers=POOL_WORKERS, mode="process",
                         cache_dir=cache_dir) as service:
        results = service.run_batch(jobs)
    return time.perf_counter() - started, [r.count for r in results]


def _drop_parent_memos() -> None:
    """Make forked workers genuinely cold.

    Worker processes are forked from this process, so its in-memory
    memos must be dropped before each pool measurement — otherwise the
    "cold" pool would silently inherit the warmup's plans through fork
    and the comparison would measure nothing.  The default cache is
    *replaced* (not cleared): clearing a persistent default would wipe a
    suite-wide spill directory when ``REPRO_PLAN_CACHE_DIR`` is set.
    """
    from repro.decomposition.sharp import clear_search_memo
    from repro.homomorphism.solver import clear_space_memo

    set_default_plan_cache(PlanCache())
    clear_search_memo()
    clear_space_memo()


def _isolated_from_configured_cache():
    """Run a measurement without ``$REPRO_PLAN_CACHE_DIR`` interference.

    CI's persistent-cache leg sets the variable suite-wide; inside it,
    ``cache_dir=None`` would silently resolve to the shared directory
    and the "cold" measurements would neither be cold nor isolated.
    ``isolated_repro_env`` also parks the process default plan cache
    for the duration, so a suite-wide persistent cache is neither read
    nor replaced by the measurement's throwaway caches.
    """
    return isolated_repro_env(**{PLAN_CACHE_DIR_ENV: None})


def measure_pools() -> dict:
    jobs = _workload()
    cache_dir = tempfile.mkdtemp(prefix="repro-plan-cache-")
    try:
        with _isolated_from_configured_cache():
            # Populate the spill directory once (inline: plans only).
            with CountingService(workers=0, cache_dir=cache_dir) as warmup:
                expected = [r.count for r in warmup.run_batch(jobs)]
            _drop_parent_memos()
            cold_seconds, cold_counts = pool_seconds(jobs, cache_dir=None)
            _drop_parent_memos()
            warm_seconds, warm_counts = pool_seconds(jobs,
                                                    cache_dir=cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    assert cold_counts == expected and warm_counts == expected
    speedup = round(cold_seconds / max(warm_seconds, 1e-9), 2)
    return {
        "pool_workload": f"{N_JOBS} jobs / {N_SHAPES} shapes "
                         f"(batch_jobs seed={SEED}), fresh "
                         f"{POOL_WORKERS}-worker process pools",
        "pool_cold_seconds": round(cold_seconds, 4),
        "pool_warm_seconds": round(warm_seconds, 4),
        "warm_pool_speedup": speedup,
        "meets_1_5x_bar": speedup >= 1.5,
    }


# ----------------------------------------------------------------------
# Part 2: maintained session vs recompute-per-count
# ----------------------------------------------------------------------
def session_database() -> Database:
    relations = {"hub": [(a,) for a in range(SESSION_HUB)]}
    for branch in range(SESSION_BRANCHES):
        relations[f"r{branch}"] = [
            (i % SESSION_HUB, (i * (7 + branch)) % SESSION_ROWS)
            for i in range(SESSION_ROWS)
        ]
    return Database.from_dict(relations)


def session_updates():
    """A deterministic stream of fresh inserts, one branch per round."""
    return [
        Insert(f"r{round_index % SESSION_BRANCHES}",
               (round_index % SESSION_HUB, SESSION_ROWS + round_index))
        for round_index in range(SESSION_ROUNDS)
    ]


def measure_session() -> tuple:
    """``(snapshot, session_counts, recompute_counts)``."""
    updates = session_updates()

    with _isolated_from_configured_cache():
        # Recompute-per-count: apply each update, then count from scratch.
        database = session_database()
        recompute_counts = []
        started = time.perf_counter()
        for update in updates:
            database = apply_update(database, update)
            for _read in range(SESSION_COUNTS_PER_UPDATE):
                recompute_counts.append(
                    count_answers(SESSION_QUERY, database).count
                )
        recompute_seconds = time.perf_counter() - started

        # The session: same stream, maintained path.
        stream = []
        for update in updates:
            stream.append(UpdateRequest("main", update))
            for _read in range(SESSION_COUNTS_PER_UPDATE):
                stream.append(CountRequest(SESSION_QUERY, "main"))
        started = time.perf_counter()
        with CountingSession(
                databases={"main": session_database()}) as session:
            results = session.run_stream(stream)
            stats = session.stats()
        session_seconds = time.perf_counter() - started
        session_counts = [r.count for r in results if hasattr(r, "count")]

    speedup = round(recompute_seconds / max(session_seconds, 1e-9), 2)
    total_tuples = SESSION_HUB + SESSION_BRANCHES * SESSION_ROWS
    snapshot = {
        "session_workload": f"{SESSION_ROUNDS} rounds of 1 update / "
                            f"{SESSION_COUNTS_PER_UPDATE} counts over a "
                            f"{SESSION_BRANCHES}-branch star, "
                            f"{total_tuples} tuples",
        "recompute_seconds": round(recompute_seconds, 4),
        "session_seconds": round(session_seconds, 4),
        "session_speedup": speedup,
        "meets_3x_bar": speedup >= 3.0,
        "maintained_counts": stats["maintained_counts"],
        "engine_counts": stats["engine_counts"],
    }
    return snapshot, session_counts, recompute_counts


def snapshot() -> dict:
    """The benchmark's JSON snapshot (merged into ``BENCH_kernel.json``)."""
    result = measure_pools()
    session_snapshot, session_counts, recompute_counts = measure_session()
    assert session_counts == recompute_counts
    result.update(session_snapshot)
    return result


# ----------------------------------------------------------------------
# pytest entry points (run by benchmarks/run_all.py's snapshot section)
# ----------------------------------------------------------------------
def test_warm_pool_at_least_1_5x_faster_than_cold():
    """ISSUE 3 bar: a warm-started fresh process pool >= 1.5x a cold one."""
    outcome = measure_pools()
    assert outcome["meets_1_5x_bar"], (
        f"warm pool {outcome['pool_warm_seconds']}s not 1.5x faster than "
        f"cold pool {outcome['pool_cold_seconds']}s "
        f"({outcome['warm_pool_speedup']}x)"
    )


def test_session_at_least_3x_faster_than_recompute():
    """ISSUE 3 bar: maintained counts >= 3x over recompute-per-count."""
    outcome, session_counts, recompute_counts = measure_session()
    assert session_counts == recompute_counts
    assert outcome["maintained_counts"] == (
        SESSION_ROUNDS * SESSION_COUNTS_PER_UPDATE
    )
    assert outcome["meets_3x_bar"], (
        f"session {outcome['session_seconds']}s not 3x faster than "
        f"recompute {outcome['recompute_seconds']}s "
        f"({outcome['session_speedup']}x)"
    )


if __name__ == "__main__":  # pragma: no cover - CI artifact entry point
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="bench-session.json")
    args = parser.parse_args()
    result = snapshot()
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))
    failed = []
    if not result["meets_1_5x_bar"]:
        failed.append("warm pool is not >= 1.5x faster than a cold pool")
    if not result["meets_3x_bar"]:
        failed.append("session is not >= 3x faster than recompute-per-count")
    for message in failed:
        print(f"FAILED: {message}", file=sys.stderr)
    if failed:
        sys.exit(1)
