"""The :class:`UnionQuery` container and its parser.

A UCQ is a finite disjunction ``Q_1 ∨ ... ∨ Q_r`` of conjunctive queries
over the *same* set of free variables; its answer set is the union of the
per-disjunct answer sets.  Disjunct order is preserved (the Karp–Luby
estimator's "first containing disjunct" trick needs a fixed order), but two
UCQs with the same disjuncts in different orders are equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Tuple

from ..exceptions import QueryError
from ..query.parser import parse_query
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable


@dataclass(frozen=True)
class UnionQuery:
    """A union of conjunctive queries with a common output schema."""

    disjuncts: Tuple[ConjunctiveQuery, ...]
    name: str = field(default="U", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "disjuncts", tuple(self.disjuncts))
        if not self.disjuncts:
            raise QueryError("a union query needs at least one disjunct")
        schema = self.disjuncts[0].free_variables
        for disjunct in self.disjuncts[1:]:
            if disjunct.free_variables != schema:
                raise QueryError(
                    "all disjuncts of a union query must share the same "
                    f"free variables; got {sorted(v.name for v in schema)} "
                    "and "
                    f"{sorted(v.name for v in disjunct.free_variables)}"
                )

    # ------------------------------------------------------------------
    @property
    def free_variables(self) -> FrozenSet[Variable]:
        """The common output schema."""
        return self.disjuncts[0].free_variables

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionQuery):
            return NotImplemented
        return frozenset(self.disjuncts) == frozenset(other.disjuncts)

    def __hash__(self) -> int:
        return hash(frozenset(self.disjuncts))

    def __repr__(self) -> str:
        return " | ".join(repr(q) for q in self.disjuncts)

    # ------------------------------------------------------------------
    def with_disjuncts(self, disjuncts) -> "UnionQuery":
        """A copy over a different disjunct tuple (same name)."""
        return UnionQuery(tuple(disjuncts), name=self.name)

    def relation_symbols(self) -> FrozenSet[str]:
        """The union of the disjuncts' vocabularies."""
        symbols: set = set()
        for disjunct in self.disjuncts:
            symbols |= disjunct.relation_symbols
        return frozenset(symbols)


def parse_ucq(text: str, name: str | None = None) -> UnionQuery:
    """Parse ``;``-separated Datalog rules into a :class:`UnionQuery`.

    Example::

        parse_ucq("ans(A) :- r(A, B) ; ans(A) :- s(A)")

    Each rule is parsed by :func:`repro.query.parser.parse_query`; the heads
    must agree on their variables (order inside the head is irrelevant — the
    output schema is a set, as everywhere in the library).
    """
    pieces = [piece.strip() for piece in text.split(";") if piece.strip()]
    if not pieces:
        raise QueryError("empty union query text")
    disjuncts = tuple(
        parse_query(piece, name=f"{name or 'U'}_{index}")
        for index, piece in enumerate(pieces)
    )
    return UnionQuery(disjuncts, name=name or "U")
