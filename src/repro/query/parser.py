"""A small Datalog-style parser for conjunctive queries.

Grammar (informal)::

    query  := head ":-" body
    head   := name "(" termlist? ")"
    body   := atom ("," atom)* | atom ("&" atom)*
    atom   := name "(" termlist ")"
    term   := VARIABLE | CONSTANT

Identifiers starting with an uppercase letter or underscore are variables
(Prolog convention); everything else — lowercase identifiers, quoted strings,
and integer literals — is a constant.  The head's terms declare the free
(output) variables; constants in the head are rejected.

Example
-------
>>> q = parse_query("ans(A, B) :- r(A, X), s(X, B), t(B, 'rome')")
>>> sorted(v.name for v in q.free_variables)
['A', 'B']
"""

from __future__ import annotations

import re
from typing import List, Tuple

from ..exceptions import ParseError
from .atom import Atom
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable

_TOKEN_RE = re.compile(
    r"""
    \s*(
        :-                          # rule separator
      | [(),&]                      # punctuation
      | '[^']*'                     # quoted constant
      | "[^"]*"                     # quoted constant
      | -?\d+                       # integer constant
      | [A-Za-z_][A-Za-z0-9_]*      # identifier
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise ParseError(f"unexpected character at position {pos}: {text[pos]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._index = 0

    def peek(self) -> str:
        if self._index >= len(self._tokens):
            raise ParseError("unexpected end of input")
        return self._tokens[self._index]

    def next(self) -> str:
        token = self.peek()
        self._index += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r}")

    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)


def _parse_term(token: str) -> Term:
    if token.startswith(("'", '"')):
        return Constant(token[1:-1])
    if re.fullmatch(r"-?\d+", token):
        return Constant(int(token))
    if token[0].isupper() or token[0] == "_":
        return Variable(token)
    return Constant(token)


def _parse_atom(stream: _TokenStream) -> Tuple[str, Tuple[Term, ...]]:
    name = stream.next()
    if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
        raise ParseError(f"bad relation symbol {name!r}")
    stream.expect("(")
    terms: List[Term] = []
    if stream.peek() != ")":
        while True:
            terms.append(_parse_term(stream.next()))
            if stream.peek() == ",":
                stream.next()
                continue
            break
    stream.expect(")")
    return name, tuple(terms)


def parse_query(text: str, name: str | None = None) -> ConjunctiveQuery:
    """Parse a Datalog-style rule into a :class:`ConjunctiveQuery`.

    Parameters
    ----------
    text:
        The rule, e.g. ``"ans(A) :- r(A, B), s(B)"``.
    name:
        Optional display name; defaults to the head predicate name.
    """
    stream = _TokenStream(_tokenize(text))
    head_name, head_terms = _parse_atom(stream)
    free = []
    for term in head_terms:
        if not isinstance(term, Variable):
            raise ParseError("constants are not allowed in the query head")
        free.append(term)
    stream.expect(":-")
    atoms: List[Atom] = []
    while True:
        relation, terms = _parse_atom(stream)
        atoms.append(Atom(relation, terms))
        if not stream.exhausted() and stream.peek() in (",", "&"):
            stream.next()
            continue
        break
    if not stream.exhausted():
        raise ParseError(f"trailing tokens starting at {stream.peek()!r}")
    return ConjunctiveQuery(
        frozenset(atoms), frozenset(free), name=name or head_name
    )
