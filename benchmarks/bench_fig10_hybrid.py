"""E8 — Figures 9/10, Examples 6.3/6.5: hybrid tractability of barQ^h_2.

Paper claims: the family has no bounded #-generalized hypertree width (the
existential frontier is a clique over the free variables), yet a width-2
#1-generalized hypertree decomposition exists with the Y variables promoted
to pseudo-free; hybrid counting is then polynomial while brute force pays
for the m-fold Z blowup.
"""

import pytest

from repro.counting import count_brute_force
from repro.counting.hybrid import count_with_hybrid_decomposition
from repro.decomposition.hybrid import (
    evaluate_pseudo_free,
    find_hybrid_decomposition,
)
from repro.decomposition.sharp import find_sharp_hypertree_decomposition
from repro.workloads import d2_bar_database, q2_bar, q2_pseudo_free

H = 2
Z_SIZES = [8, 32, 128]


@pytest.mark.benchmark(group="fig10-search")
def test_structural_method_fails(benchmark):
    decomposition = benchmark(
        find_sharp_hypertree_decomposition, q2_bar(H), 2
    )
    assert decomposition is None


@pytest.mark.benchmark(group="fig10-search")
def test_hybrid_search_finds_degree_1(benchmark):
    query, database = q2_bar(H), d2_bar_database(H)
    hybrid = benchmark(find_hybrid_decomposition, query, database, 2)
    assert hybrid is not None
    assert hybrid.degree == 1
    assert hybrid.width() <= 2


@pytest.mark.benchmark(group="fig10-hybrid-count")
@pytest.mark.parametrize("m_z", Z_SIZES)
def test_hybrid_counting_scaling(benchmark, m_z):
    query = q2_bar(H)
    database = d2_bar_database(H, m_z=m_z)
    hybrid = evaluate_pseudo_free(query, database, 2, q2_pseudo_free(H))
    count = benchmark(
        count_with_hybrid_decomposition, query, database, hybrid
    )
    assert count == 2 ** H


@pytest.mark.benchmark(group="fig10-brute-count")
@pytest.mark.parametrize("m_z", Z_SIZES)
def test_brute_force_scaling(benchmark, m_z):
    query = q2_bar(H)
    database = d2_bar_database(H, m_z=m_z)
    count = benchmark(count_brute_force, query, database)
    assert count == 2 ** H
