#!/usr/bin/env python3
"""Hybrid decompositions: exploiting keys in the data (Section 6).

Example 6.3's family barQ^h_2 defeats every purely structural method — the
frontier of its existential variables is a clique over all the output
variables.  But the *data* is kind: the Y variables are functionally
determined (degree 1), so promoting them to pseudo-free status dissolves
the frontier clique while the real troublemaker Z stays existential.

This script shows:
1. the structural method failing (no width-2 #-hypertree decomposition);
2. the Theorem 6.7 search discovering the width-2 #1-GHD of Example 6.5;
3. Theorem 6.6 counting matching brute force, at polynomial cost in the
   database size while brute force degrades with the Z-blowup.

Run:  python examples/hybrid_keys.py
"""

import time

from repro import count_brute_force
from repro.counting.hybrid import count_with_hybrid_decomposition
from repro.decomposition import (
    evaluate_pseudo_free,
    find_hybrid_decomposition,
    find_sharp_hypertree_decomposition,
)
from repro.workloads import d2_bar_database, q2_bar, q2_pseudo_free


def main() -> None:
    h = 2
    query = q2_bar(h)
    database = d2_bar_database(h)
    print("query:", query)
    print(f"database: {database}\n")

    print("-- purely structural methods fail --")
    for width in (1, 2):
        found = find_sharp_hypertree_decomposition(query, width)
        print(f"  width-{width} #-hypertree decomposition:",
              "exists" if found else "none (frontier clique)")
    print()

    print("-- Theorem 6.7: search for a hybrid decomposition --")
    start = time.perf_counter()
    hybrid = find_hybrid_decomposition(query, database, width=2)
    elapsed = time.perf_counter() - start
    promoted = sorted(
        v.name for v in hybrid.pseudo_free - query.free_variables
    )
    print(f"  found in {elapsed * 1e3:.1f} ms")
    print(f"  promoted pseudo-free variables: {promoted}")
    print(f"  degree bound b = {hybrid.degree}, width = {hybrid.width()}")
    print("  (Z stays existential: promoting it would cost degree m)\n")

    print("-- the paper's own pseudo-free set (Example 6.5) --")
    paper_choice = evaluate_pseudo_free(query, database, 2, q2_pseudo_free(h))
    print(f"  S = free + Y0..Y{h}: degree {paper_choice.degree}, "
          f"width {paper_choice.width()}\n")

    print("-- Theorem 6.6 counting vs brute force, growing Z-domain --")
    for m_z in (4, 16, 64, 256):
        big = d2_bar_database(h, m_z=m_z)
        decomposition = evaluate_pseudo_free(query, big, 2, q2_pseudo_free(h))

        start = time.perf_counter()
        hybrid_count = count_with_hybrid_decomposition(query, big, decomposition)
        hybrid_time = time.perf_counter() - start

        start = time.perf_counter()
        brute = count_brute_force(query, big)
        brute_time = time.perf_counter() - start

        assert hybrid_count == brute
        print(f"  |Z| = {m_z:4d}  count={hybrid_count}  "
              f"hybrid={hybrid_time * 1e3:7.1f} ms  "
              f"brute={brute_time * 1e3:7.1f} ms")


if __name__ == "__main__":
    main()
