"""Unit tests for the brute-force counting baseline."""

from repro.counting.brute_force import answers, count_brute_force, full_join
from repro.db import Database
from repro.query import Variable, parse_query

A, B, C = Variable("A"), Variable("B"), Variable("C")


class TestFullJoin:
    def test_join_over_all_atoms(self, path_query, path_database):
        joined = full_join(path_query, path_database)
        assert joined.variable_set() == {A, B, C}
        assert len(joined) == 6

    def test_empty_when_unsatisfiable(self, path_query):
        db = Database.from_dict({"r": [(1, 2)], "s": [(9, 9)]})
        assert len(full_join(path_query, db)) == 0

    def test_cartesian_components_handled(self):
        q = parse_query("ans(A, B) :- r(A), s(B)")
        db = Database.from_dict({"r": [(1,), (2,)], "s": [(5,), (6,), (7,)]})
        assert count_brute_force(q, db) == 6


class TestCounting:
    def test_projection_deduplicates(self, path_query, path_database):
        # 6 satisfying assignments but answers project onto (A, C).
        result = answers(path_query, path_database)
        assert count_brute_force(path_query, path_database) == len(result)
        # (1,5),(1,6),(2,5),(2,6),(3,7) -- (1,5) arises via B=10 and B=11.
        assert count_brute_force(path_query, path_database) == 5

    def test_boolean_query_counts_0_or_1(self):
        q = parse_query("ans() :- r(A, B)")
        assert count_brute_force(q, Database.from_dict({"r": [(1, 2)]})) == 1
        empty = Database.from_dict({"r": [(1, 2)]}).without("r")
        empty = empty.with_relation(
            __import__("repro.db", fromlist=["Relation"]).Relation("r", 2, [])
        )
        assert count_brute_force(q, empty) == 0

    def test_constants_in_query(self):
        q = parse_query("ans(A) :- r(A, 7)")
        db = Database.from_dict({"r": [(1, 7), (2, 7), (3, 8)]})
        assert count_brute_force(q, db) == 2

    def test_repeated_relation_symbol(self, triangle_query, triangle_database):
        # triangles through each A: enumerate by hand
        # edges: 1-2,2-3,3-1 directed cycle plus 2-1,1-4,4-5
        # e(A,B),e(B,C),e(C,A): A=1: (1,2,3)? e(3,1) yes -> valid. A=2: (2,3,1)
        # -> e(1,2) yes. A=3: (3,1,2) -> e(2,3) yes. Also A=1,(1,2),(2,1),(1,?)
        # e(2,1) then C=1, e(1,1)? no. So {1,2,3} each once => 3 answers? A
        # also via (1,2),(2,3),(3,1): A=1. (2,1)&(1,4)&(4,2)? no.
        assert count_brute_force(triangle_query, triangle_database) == 3
