"""A star/snowflake analytics workload with keys and quasi-keys.

Section 6's motivation is that real databases carry functional
dependencies — dimension tables keyed by their identifier, hierarchies
where each level determines the next — that purely structural methods
cannot see.  This module builds a synthetic but realistically-shaped
warehouse:

* a fact table ``sales(order_id, customer, product, store, quantity)``;
* keyed dimensions ``customer_info(customer, region)``,
  ``product_info(product, category)``, ``store_info(store, city)``;
* a hierarchy ``city_region(city, region)`` making the schema a snowflake.

Dimension lookups have degree 1 (the dimension key is a key), so hybrid
#1-decompositions exist for the analytics queries even when their frontier
hypergraphs are unpleasant.  The query constructors pair with the database
generator and state which engine strategy is expected to win.
"""

from __future__ import annotations

import random
from typing import Optional

from ..db.database import Database
from ..db.relation import Relation
from ..query.parser import parse_query
from ..query.query import ConjunctiveQuery


def snowflake_database(n_orders: int = 200, n_customers: int = 40,
                       n_products: int = 25, n_stores: int = 10,
                       n_cities: int = 6, n_regions: int = 3,
                       seed: Optional[int] = None) -> Database:
    """A populated snowflake warehouse; all dimension keys are true keys."""
    rng = random.Random(seed)
    cities = [f"city{i}" for i in range(n_cities)]
    regions = [f"region{i}" for i in range(n_regions)]
    city_region = [(city, regions[i % n_regions])
                   for i, city in enumerate(cities)]
    customers = [f"cust{i}" for i in range(n_customers)]
    customer_info = [
        (customer, regions[rng.randrange(n_regions)])
        for customer in customers
    ]
    products = [f"prod{i}" for i in range(n_products)]
    categories = ["food", "tools", "books"]
    product_info = [
        (product, categories[rng.randrange(len(categories))])
        for product in products
    ]
    stores = [f"store{i}" for i in range(n_stores)]
    store_info = [
        (store, cities[rng.randrange(n_cities)]) for store in stores
    ]
    sales = [
        (
            order,
            customers[rng.randrange(n_customers)],
            products[rng.randrange(n_products)],
            stores[rng.randrange(n_stores)],
            rng.randrange(1, 9),
        )
        for order in range(n_orders)
    ]
    return Database([
        Relation("sales", 5, sales),
        Relation("customer_info", 2, customer_info),
        Relation("product_info", 2, product_info),
        Relation("store_info", 2, store_info),
        Relation("city_region", 2, city_region),
    ])


def customers_by_category_query() -> ConjunctiveQuery:
    """Which (customer, category) pairs have a purchase?

    The existential variables (order, product, store, quantity) hang off
    the fact table; the dimension lookup ``product_info`` is keyed, so the
    hybrid engine can promote ``P`` cheaply.
    """
    return parse_query(
        "ans(C, G) :- sales(O, C, P, S, Q), product_info(P, G)",
        name="customers_by_category",
    )


def same_region_pairs_query() -> ConjunctiveQuery:
    """Customer pairs shopping at stores whose city lies in their region.

    A genuinely cyclic analytics query: the store's city determines a
    region that must match the customer's region.  The keyed hierarchy
    (``store -> city -> region``) keeps the degree bound at 1.
    """
    return parse_query(
        "ans(C1, C2) :- sales(O1, C1, P1, S, Q1), sales(O2, C2, P2, S, Q2), "
        "store_info(S, Y), city_region(Y, R), "
        "customer_info(C1, R), customer_info(C2, R)",
        name="same_region_pairs",
    )


def store_catalogue_query() -> ConjunctiveQuery:
    """Which (store, category) pairs moved product?  Acyclic, width 1."""
    return parse_query(
        "ans(S, G) :- sales(O, C, P, S, Q), product_info(P, G)",
        name="store_catalogue",
    )
