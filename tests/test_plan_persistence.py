"""Persistence round-trips for the plan cache (ISSUE 3).

Plans must survive save/load across cache instances (and processes); a
corrupted or stale spill entry must be detected and silently rebuilt —
never served; a warm-started process pool must answer without
re-planning; and a dynamic update must invalidate exactly the
data-dependent plans whose relation contents it touches.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.counting.engine import clear_engine_memo, count_answers
from repro.counting.plan_cache import (
    ENTRY_SUFFIX,
    PersistentPlanCache,
    PlanCache,
    default_plan_cache,
    relation_content_tag,
    stable_key_digest,
    stable_key_render,
)
from repro.db import Database
from repro.decomposition.serialize import (
    PlanSerializationError,
    deserialize_plan,
    serialize_plan,
)
from repro.decomposition.sharp import find_sharp_hypertree_decomposition
from repro.dynamic import Insert, apply_update
from repro.envknobs import isolated_repro_env
from repro.query import parse_query
from repro.service import CountingService, CountingSession, CountRequest
from repro.workloads.batch_jobs import batch_jobs

TRIANGLE = parse_query("ans(A) :- r(A, B), s(B, C), t(C, A)")
PATH = parse_query("ans(A, B, C) :- r(A, B), s(B, C)")


def triangle_database(bump: int = 0) -> Database:
    return Database.from_dict({
        "r": [(1, 2), (2, 3), (7 + bump, 8 + bump)],
        "s": [(2, 3), (3, 1)],
        "t": [(3, 1), (1, 2)],
    })


def entry_files(directory):
    return sorted(
        name for name in os.listdir(directory)
        if name.endswith(ENTRY_SUFFIX)
    )


class TestPlanBlobs:
    def test_round_trip_of_every_plan_kind(self):
        for plan in (True, None, 42):
            assert deserialize_plan(serialize_plan(plan)) == plan
        sharp = find_sharp_hypertree_decomposition(TRIANGLE, 2)
        assert sharp is not None
        restored = deserialize_plan(serialize_plan(sharp))
        assert restored.is_valid()
        assert restored.query == sharp.query
        assert restored.tree.bags == sharp.tree.bags
        width, witness = deserialize_plan(serialize_plan((2, sharp)))
        assert width == 2 and witness.is_valid()

    def test_corrupted_blob_is_rejected(self):
        blob = serialize_plan(True)
        with pytest.raises(PlanSerializationError):
            deserialize_plan(blob[:-3] + b"zzz")
        with pytest.raises(PlanSerializationError):
            deserialize_plan(b"garbage-no-envelope")

    def test_foreign_version_is_rejected(self):
        blob = serialize_plan(True)
        magic, version, rest = blob.split(b":", 2)
        with pytest.raises(PlanSerializationError):
            deserialize_plan(magic + b":999:" + rest)

    def test_unpicklable_plan_raises(self):
        with pytest.raises(PlanSerializationError):
            serialize_plan(lambda: None)


class TestStableKeys:
    def test_render_sorts_unordered_containers(self):
        a = ("k", frozenset({("x", 1), ("y", 2)}), 3)
        b = ("k", frozenset({("y", 2), ("x", 1)}), 3)
        assert stable_key_render(a) == stable_key_render(b)
        assert stable_key_digest(a) == stable_key_digest(b)

    def test_distinct_keys_render_differently(self):
        assert (stable_key_render(("k", 1)) != stable_key_render(("k", "1")))
        assert stable_key_digest(("k", math.inf)) != \
            stable_key_digest(("k", 2.0))


class TestPersistentRoundTrip:
    def test_plans_survive_into_a_fresh_cache(self, tmp_path):
        directory = str(tmp_path / "plans")
        first = PersistentPlanCache(directory)
        result = count_answers(TRIANGLE, triangle_database(),
                               plan_cache=first)
        assert first.persisted > 0
        assert entry_files(directory)

        warm = PersistentPlanCache(directory)
        again = count_answers(TRIANGLE, triangle_database(), plan_cache=warm)
        assert again.count == result.count
        stats = warm.stats()
        assert stats["misses"] == 0, "warm cache must not re-plan"
        assert stats["disk_hits"] > 0

    def test_corrupted_entry_is_detected_and_rebuilt(self, tmp_path):
        directory = str(tmp_path / "plans")
        cache = PersistentPlanCache(directory)
        expected = count_answers(TRIANGLE, triangle_database(),
                                 plan_cache=cache).count
        victims = entry_files(directory)
        for name in victims:
            with open(os.path.join(directory, name), "w") as handle:
                handle.write("{definitely not json")

        rebuilt = PersistentPlanCache(directory)
        result = count_answers(TRIANGLE, triangle_database(),
                               plan_cache=rebuilt)
        assert result.count == expected
        stats = rebuilt.stats()
        assert stats["disk_rejected"] >= 1
        assert stats["misses"] >= 1  # recomputed, not served corrupt
        # ... and the next cache sees healthy, rebuilt entries.
        healthy = PersistentPlanCache(directory)
        assert count_answers(TRIANGLE, triangle_database(),
                             plan_cache=healthy).count == expected
        assert healthy.stats()["disk_rejected"] == 0

    def test_stale_entry_key_mismatch_is_rejected(self, tmp_path):
        """An entry whose stored key doesn't match the requested key (a
        stale file smuggled under the wrong digest) must be refused."""
        directory = str(tmp_path / "plans")
        cache = PersistentPlanCache(directory)
        count_answers(TRIANGLE, triangle_database(), plan_cache=cache)
        # Stale every entry: a warm compiled-tier run only consults the
        # compiled artifact, so a single victim might never be read.
        for name in entry_files(directory):
            path = os.path.join(directory, name)
            with open(path) as handle:
                entry = json.load(handle)
            entry["key"] = entry["key"] + "STALE"
            with open(path, "w") as handle:
                json.dump(entry, handle)

        suspicious = PersistentPlanCache(directory)
        count_answers(TRIANGLE, triangle_database(), plan_cache=suspicious)
        assert suspicious.stats()["disk_rejected"] >= 1

    def test_changed_database_contents_never_reuse_hybrid_plans(
            self, tmp_path):
        """Content-fingerprint mismatch: a data-dependent plan cached for
        one database version is not served for another."""
        directory = str(tmp_path / "plans")
        cache = PersistentPlanCache(directory)
        original = triangle_database()
        count_answers(TRIANGLE, original, method="hybrid", plan_cache=cache)
        computes = cache.stats()["misses"]

        fresh = PersistentPlanCache(directory)
        count_answers(TRIANGLE, triangle_database(bump=5), method="hybrid",
                      plan_cache=fresh)
        assert fresh.stats()["misses"] >= 1, (
            "a different database content must re-plan, not reuse"
        )
        assert computes >= 1

    def test_clear_drops_the_disk_tier_too(self, tmp_path):
        directory = str(tmp_path / "plans")
        cache = PersistentPlanCache(directory)
        count_answers(TRIANGLE, triangle_database(), plan_cache=cache)
        assert cache.disk_entries() > 0
        cache.clear()
        assert cache.disk_entries() == 0
        assert len(cache) == 0


class TestWarmProcessPool:
    def test_warm_started_pool_answers_without_replanning(self, tmp_path):
        directory = str(tmp_path / "plans")
        jobs = batch_jobs(n_jobs=6, n_shapes=2, seed=9,
                          n_variables=5, n_atoms=4, domain_size=5,
                          tuples_per_relation=12)
        # Populate the spill directory once, inline.
        with CountingService(workers=0, cache_dir=directory) as warmup:
            expected = [r.count for r in warmup.run_batch(jobs)]
        assert PersistentPlanCache(directory).disk_entries() > 0

        # A *fresh* process pool over the populated directory: the single
        # worker must serve every job from disk, with zero plan computes.
        with CountingService(workers=1, mode="process",
                             cache_dir=directory) as pool:
            counts = [r.count for r in pool.run_batch(jobs)]
            stats = pool.worker_cache_stats()[0]
        assert counts == expected
        assert stats["misses"] == 0, (
            f"warm worker re-planned: {stats}"
        )
        assert stats["disk_hits"] > 0

    def test_default_cache_honors_environment(self, tmp_path):
        directory = str(tmp_path / "env-plans")
        with isolated_repro_env(REPRO_PLAN_CACHE_DIR=directory):
            cache = default_plan_cache()
            assert isinstance(cache, PersistentPlanCache)
            assert cache.directory == os.path.abspath(directory)
            count_answers(TRIANGLE, triangle_database())
            assert cache.disk_entries() > 0
            clear_engine_memo()  # must drop the disk tier as well
            assert cache.disk_entries() == 0


class TestTargetedInvalidation:
    """ISSUE 3 satellite: an update invalidates exactly what it touches."""

    def test_update_invalidates_only_touched_fingerprints(self, tmp_path):
        directory = str(tmp_path / "plans")
        cache = PersistentPlanCache(directory)
        db_a = triangle_database()
        db_b = triangle_database(bump=3)
        count_answers(TRIANGLE, db_a, method="hybrid", plan_cache=cache)
        count_answers(TRIANGLE, db_b, method="hybrid", plan_cache=cache)
        count_answers(TRIANGLE, db_a, method="structural", plan_cache=cache)
        before = len(cache)
        disk_before = cache.disk_entries()

        # Updating r in db_a touches db_a's hybrid plan only: db_b's
        # hybrid plan and the shape-only structural plan must survive.
        dropped = cache.invalidate_tags(relation_content_tag(db_a["r"]))
        assert dropped >= 1
        assert len(cache) < before
        assert cache.disk_entries() < disk_before

        # db_b's hybrid plan still serves without recomputation...
        misses = cache.stats()["misses"]
        count_answers(TRIANGLE, db_b, method="hybrid", plan_cache=cache)
        assert cache.stats()["misses"] == misses
        # ...as does the shape-only structural plan.
        count_answers(TRIANGLE, db_a, method="structural", plan_cache=cache)
        assert cache.stats()["misses"] == misses
        # The invalidated hybrid plan recomputes (and is correct).
        updated = apply_update(db_a, Insert("r", (9, 9)))
        fresh = count_answers(TRIANGLE, updated, method="hybrid",
                              plan_cache=cache)
        assert fresh.count == count_answers(
            TRIANGLE, updated, method="brute_force").count
        assert cache.stats()["misses"] > misses

    def test_session_update_invalidates_through_its_cache(self):
        """The session wires updates to tag invalidation end to end."""
        cache = PlanCache()
        database = triangle_database()
        with CountingSession(databases={"main": database},
                             plan_cache=cache) as session:
            session.count(CountRequest(TRIANGLE, "main", method="hybrid"))
            session.count(CountRequest(PATH, "main"))  # shape-only plans
            assert len(cache) >= 1
            ack = session.update("main", Insert("r", (41, 42)))
            assert ack["invalidated_plans"] >= 1
            # Counting again after the update replans against the new
            # contents and agrees with brute force.
            result = session.count(
                CountRequest(TRIANGLE, "main", method="hybrid"))
            expected = count_answers(
                TRIANGLE, session.database("main"),
                method="brute_force").count
            assert result.count == expected

    def test_untagged_plans_are_never_invalidated(self):
        cache = PlanCache()
        count_answers(PATH, triangle_database(), plan_cache=cache)
        plans_before = len(cache)
        assert cache.invalidate_tags("no-such-tag") == 0
        assert cache.invalidate_tags() == 0
        assert len(cache) == plans_before
