"""Answer counting under database updates.

Berkholz, Keppeler and Schweikardt [BKS17, BKS18] (paper Section 1.3)
study the *dynamic* variant of the counting problem: maintain
``count(Q, D)`` while tuples are inserted into and deleted from ``D``,
spending far less per update than a recount from scratch.

This subpackage implements the tractable heart of that line of work:

* :mod:`repro.dynamic.updates` — the update vocabulary (:class:`Insert`,
  :class:`Delete`) and an applier producing updated immutable databases;
* :mod:`repro.dynamic.maintainer` — :class:`IncrementalCounter`, a
  materialized join-tree dynamic program over an acyclic quantifier-free
  query whose per-tuple update cost is proportional to the affected
  root-to-leaf path instead of the whole database.

Queries with existential variables first go through the paper's Theorem
3.7 reduction to a quantifier-free acyclic instance; the maintainer
handles the resulting instance directly when the reduction's bag relations
are per-atom (the free-connex-style cases); otherwise a recount is the
honest fallback, matching the dichotomy of [BKS17].
"""

from .maintainer import (
    MAINTAINER_BUDGET_ENV,
    IncrementalCounter,
    MaintainerPool,
    SharedMaintainer,
    maintainer_budget_from_env,
)
from .updates import Delete, Insert, Update, apply_update

__all__ = [
    "MAINTAINER_BUDGET_ENV",
    "IncrementalCounter",
    "MaintainerPool",
    "SharedMaintainer",
    "maintainer_budget_from_env",
    "Insert",
    "Delete",
    "Update",
    "apply_update",
]
