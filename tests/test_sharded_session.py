"""The sharded multi-writer front end and maintainer spilling (ISSUE 4).

Covers the :class:`~repro.service.SessionRouter`'s stable partitioning,
:class:`~repro.service.MultiWriterSession` in all three shard-worker
flavors (inline / thread / process) against single-writer sequential
replay, thread-safe multi-producer submission, the maintainer pool's
byte budget with checkpoint spill + delta-journal restore (including
corrupted checkpoints), deterministic LRU eviction, and the sharded
session CLI.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.cli import main as cli_main
from repro.counting.engine import count_answers
from repro.db import Database
from repro.dynamic import Insert, MaintainerPool
from repro.dynamic.maintainer import (
    MAINTAINER_BUDGET_ENV,
    maintainer_budget_from_env,
)
from repro.exceptions import DatabaseError, ReproError
from repro.query import parse_query
from repro.query.canonical import canonical_form, random_renaming
from repro.service import (
    AttachDatabase,
    CountRequest,
    CountingSession,
    MultiWriterSession,
    SessionRouter,
    UpdateRequest,
)
from repro.workloads.multi_writer import (
    multi_writer_streams,
    write_multi_writer_streams,
)

PATH = parse_query("ans(A, B, C) :- r(A, B), s(B, C)")


def path_database(shift: int = 0) -> Database:
    return Database.from_dict({
        "r": [(1 + shift, 2), (3, 4)],
        "s": [(2, 5), (4, 6 + shift)],
    })


def result_counts(results):
    return [r.count for r in results if hasattr(r, "count")]


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------
class TestSessionRouter:
    def test_partition_is_stable_and_in_range(self):
        router = SessionRouter(3)
        for name in ("db0", "main", "w1-db0", "x" * 50):
            shard = router.shard_of(name)
            assert 0 <= shard < 3
            assert shard == router.shard_of(name)  # deterministic

    def test_partition_is_not_builtin_hash(self):
        # Pinned expected values: builtin hash is randomized per process,
        # so equality across this test's runs proves a stable digest.
        router = SessionRouter(4)
        observed = {name: router.shard_of(name)
                    for name in ("star0", "star1", "star2", "star3")}
        assert observed == {"star0": 2, "star1": 1, "star2": 2, "star3": 1}

    def test_jobs_route_by_their_database_name(self):
        router = SessionRouter(5)
        database = path_database()
        attach = AttachDatabase("alpha", database)
        count = CountRequest(PATH, "alpha")
        update = UpdateRequest("alpha", Insert("r", (9, 9)))
        assert (router.shard_for_job(attach)
                == router.shard_for_job(count)
                == router.shard_for_job(update)
                == router.shard_of("alpha"))

    def test_unroutable_job_raises(self):
        with pytest.raises(ReproError):
            SessionRouter(2).shard_for_job(object())

    def test_at_least_one_shard_required(self):
        with pytest.raises(ValueError):
            SessionRouter(0)


# ----------------------------------------------------------------------
# The multi-writer session
# ----------------------------------------------------------------------
def interleaved_jobs(n_databases: int = 4):
    """One interleaved stream touching *n_databases* databases."""
    databases = {f"db{i}": path_database(shift=i)
                 for i in range(n_databases)}
    jobs = []
    for i in range(n_databases):
        jobs.append(UpdateRequest(f"db{i}", Insert("r", (7 + i, 2))))
        jobs.append(CountRequest(PATH, f"db{i}", label=f"count{i}"))
        jobs.append(CountRequest(
            random_renaming(PATH, seed=i), f"db{i}", label=f"renamed{i}"
        ))
    return databases, jobs


class TestMultiWriterSession:
    @pytest.mark.parametrize("shard_mode", ["inline", "thread", "process"])
    def test_stream_matches_single_writer_replay(self, shard_mode):
        databases, jobs = interleaved_jobs()
        with CountingSession(databases=dict(databases)) as single:
            expected = result_counts(single.run_stream(jobs))
        with MultiWriterSession(databases=dict(databases), shards=2,
                                shard_mode=shard_mode) as sharded:
            results = sharded.run_stream(jobs)
            stats = sharded.stats()
        assert result_counts(results) == expected
        assert stats["shards"] == 2
        assert stats["maintained_counts"] + stats["engine_counts"] == 8
        assert sorted(stats["databases"]) == sorted(databases)
        assert [shard["shard"] for shard in stats["per_shard"]] == \
            ["shard0", "shard1"]

    def test_submit_returns_per_job_futures(self):
        with MultiWriterSession(shards=2, shard_mode="thread") as session:
            attach = session.submit(AttachDatabase("main", path_database()))
            assert attach.result()["attached"] is True
            count = session.submit(CountRequest(PATH, "main"))
            assert count.result().count == \
                count_answers(PATH, path_database()).count

    def test_invalid_update_raises_through_its_future_only(self):
        with MultiWriterSession(databases={"main": path_database()},
                                shards=2, shard_mode="thread") as session:
            before = session.submit(CountRequest(PATH, "main")).result()
            bad = session.submit(
                UpdateRequest("main", Insert("r", (1, 2)))  # duplicate
            )
            with pytest.raises(DatabaseError):
                bad.result()
            after = session.submit(CountRequest(PATH, "main")).result()
            assert after.count == before.count

    def test_concurrent_producers_from_many_threads(self):
        """Thread-safe submit: eight producer threads, distinct
        databases, every stream's results equal sequential replay."""
        streams = []
        databases = {}
        for writer in range(8):
            name = f"w{writer}"
            databases[name] = path_database(shift=writer)
            streams.append([
                UpdateRequest(name, Insert("r", (100 + writer, 2))),
                CountRequest(PATH, name),
                UpdateRequest(name, Insert("s", (2, 200 + writer))),
                CountRequest(PATH, name),
            ])
        expected = []
        for writer, stream in enumerate(streams):
            with CountingSession(
                    databases={f"w{writer}": databases[f"w{writer}"]}
            ) as single:
                expected.append(result_counts(single.run_stream(stream)))
        with MultiWriterSession(databases=databases, shards=3,
                                shard_mode="thread") as sharded:
            outcomes = sharded.run_streams(streams)
        assert [result_counts(outcome) for outcome in outcomes] == expected

    def test_same_database_ordering_is_preserved(self):
        """A long same-database update/count alternation must observe
        every update in submission order (the shard queue serializes)."""
        database = Database.from_dict({"r": [(0, 2)], "s": [(2, 0)]})
        with MultiWriterSession(databases={"main": database},
                                shards=2, shard_mode="thread") as session:
            futures = []
            for step in range(12):
                futures.append(session.submit(
                    UpdateRequest("main", Insert("r", (step + 1, 2)))
                ))
                futures.append(session.submit(CountRequest(PATH, "main")))
            counts = [f.result().count
                      for f in futures if hasattr(f.result(), "count")]
        # After k inserts of r(*, 2) there are k+2 join answers... compute
        # directly: each r-row with B=2 joins s(2, 0).
        assert counts == [step + 2 for step in range(12)]

    def test_run_streams_surfaces_producer_submission_errors(self):
        """A stream whose job cannot even be routed must raise out of
        run_streams, not die silently on its producer thread."""
        good = [AttachDatabase("ok", path_database()),
                CountRequest(PATH, "ok")]
        bad = [object()]  # unroutable: names no database
        with MultiWriterSession(shards=2, shard_mode="thread") as session:
            with pytest.raises(ReproError):
                session.run_streams([good, bad])

    def test_inline_mode_serializes_concurrent_producers(self):
        """shard_mode='inline' keeps the thread-safe submit contract:
        concurrent producers hammering one shard's database stay
        consistent (the handle lock serializes them)."""
        database = Database.from_dict({"r": [(0, 2)], "s": [(2, 0)]})
        with MultiWriterSession(databases={"main": database}, shards=2,
                                shard_mode="inline") as session:
            streams = [
                [UpdateRequest("main",
                               Insert("r", (1000 * (writer + 1) + step, 2)))
                 for step in range(20)]
                for writer in range(4)
            ]
            session.run_streams(streams)
            final = session.submit(CountRequest(PATH, "main")).result()
        # 1 seed row + 4x20 inserted rows, each joining s(2, 0).
        assert final.count == 81

    def test_process_mode_rejects_shared_plan_cache(self):
        from repro.counting.plan_cache import PlanCache

        with pytest.raises(ValueError):
            MultiWriterSession(shards=2, shard_mode="process",
                               plan_cache=PlanCache())

    def test_env_default_shard_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_SESSION_SHARDS", "3")
        with MultiWriterSession(shard_mode="inline") as session:
            assert session.shards == 3

    def test_unknown_shard_mode_rejected(self):
        with pytest.raises(ValueError):
            MultiWriterSession(shards=2, shard_mode="fibers")

    def test_thread_shards_share_one_plan_cache(self):
        databases, jobs = interleaved_jobs(3)
        with MultiWriterSession(databases=databases, shards=2,
                                shard_mode="thread") as session:
            session.run_stream(jobs)
            stats = session.stats()
        assert stats["plan_cache_scope"] == "shared"
        caches = [shard["plan_cache"] for shard in stats["per_shard"]]
        # One shared object: every shard reports identical counters.
        assert all(cache == caches[0] for cache in caches)

    def test_process_shards_label_their_plan_caches(self):
        databases, jobs = interleaved_jobs(2)
        with MultiWriterSession(databases=databases, shards=2,
                                shard_mode="process") as session:
            session.run_stream(jobs)
            stats = session.stats()
        assert stats["plan_cache_scope"] == "per-shard-process"
        labels = [shard["plan_cache"].get("label")
                  for shard in stats["per_shard"]]
        assert labels == ["shard0", "shard1"]


# ----------------------------------------------------------------------
# Maintainer byte budget, spilling, and restore
# ----------------------------------------------------------------------
def build_pool_entry(pool, token, query, database):
    return pool.counter_for(token, query, database, canonical_form(query))


class TestMaintainerBudget:
    def test_estimated_bytes_grows_with_data(self):
        small = build_pool_entry(
            MaintainerPool(budget_bytes=None), "d", PATH, path_database()
        )
        big_db = Database.from_dict({
            "r": [(i, i % 7) for i in range(300)],
            "s": [(i % 7, i) for i in range(300)],
        })
        big = build_pool_entry(
            MaintainerPool(budget_bytes=None), "d", PATH, big_db
        )
        assert small.resident_bytes > 0
        assert big.resident_bytes > 4 * small.resident_bytes

    def test_budget_spills_lru_and_restores_by_replaying_deltas(self):
        pool = MaintainerPool(capacity=64, budget_bytes=1)  # absurdly tiny
        db0, db1 = path_database(0), path_database(5)
        entry0 = build_pool_entry(pool, "db0", PATH, db0)
        assert entry0.count == count_answers(PATH, db0).count
        # Second build exceeds the 1-byte budget: db0's DP spills (the
        # MRU entry itself always stays resident).
        build_pool_entry(pool, "db1", PATH, db1)
        stats = pool.stats()
        assert stats["maintainers"] == 1
        assert stats["spilled_entries"] == 1
        assert stats["spilled"] == 1 and stats["evicted"] == 1
        # Updates to the cold database land in its delta journal only.
        pool.apply("db0", [Insert("r", (7, 2)), Insert("s", (2, 9))])
        db0_now = db0.with_relation(db0["r"].union([(7, 2)]))
        db0_now = db0_now.with_relation(db0_now["s"].union([(2, 9)]))
        # Restore: checkpoint + journal replay, not a rebuild.  The
        # database argument is deliberately the *stale* snapshot — a
        # rebuild from it would produce the wrong count.
        restored = build_pool_entry(pool, "db0", PATH, db0)
        assert restored.count == count_answers(PATH, db0_now).count
        stats = pool.stats()
        assert stats["restored"] == 1
        assert stats["built"] == 2  # no third build
        pool.close()

    def test_peak_resident_bytes_stays_under_generous_budget(self):
        databases = [
            Database.from_dict({
                "r": [(i, (i + shift) % 11) for i in range(120)],
                "s": [((i + shift) % 11, i) for i in range(120)],
            })
            for shift in range(4)
        ]
        single = build_pool_entry(
            MaintainerPool(budget_bytes=None), "probe", PATH, databases[0]
        )
        budget = int(single.resident_bytes * 1.5)
        pool = MaintainerPool(budget_bytes=budget)
        for _round in range(3):
            for index, database in enumerate(databases):
                entry = build_pool_entry(pool, f"db{index}", PATH, database)
                assert entry.count == count_answers(PATH, database).count
        stats = pool.stats()
        assert stats["spilled"] > 0 and stats["restored"] > 0
        assert stats["peak_resident_bytes"] <= budget
        pool.close()

    def test_eviction_is_deterministic_lru_under_equal_sizes(self):
        """Four same-shape, same-size entries, capacity two: the two
        oldest are spilled, in build order, every time."""
        def run():
            pool = MaintainerPool(capacity=2, budget_bytes=None)
            for index in range(4):
                build_pool_entry(pool, f"db{index}", PATH, path_database())
            resident = [key[0] for key in pool._entries]
            cold = sorted(key[0] for key in pool._spilled)
            pool.close()
            return resident, cold

        first = run()
        assert first == (["db2", "db3"], ["db0", "db1"])
        assert all(run() == first for _ in range(3))

    def test_corrupted_checkpoint_rebuilds_from_database(self, tmp_path):
        pool = MaintainerPool(capacity=1, budget_bytes=None,
                              spill_dir=str(tmp_path))
        db0 = path_database()
        build_pool_entry(pool, "db0", PATH, db0)
        build_pool_entry(pool, "db1", PATH, path_database(3))  # spills db0
        (spill_file,) = [
            os.path.join(str(tmp_path), name)
            for name in os.listdir(str(tmp_path))
        ]
        with open(spill_file, "wb") as handle:
            handle.write(b"garbage" * 10)
        restored = build_pool_entry(pool, "db0", PATH, db0)
        assert restored.count == count_answers(PATH, db0).count
        stats = pool.stats()
        assert stats["restore_failures"] == 1
        assert stats["built"] == 3  # the corrupt checkpoint forced a rebuild
        pool.close()

    def test_discard_drops_cold_state_and_journal(self):
        pool = MaintainerPool(capacity=1, budget_bytes=None)
        build_pool_entry(pool, "db0", PATH, path_database())
        build_pool_entry(pool, "db1", PATH, path_database(1))  # spills db0
        pool.apply("db0", [Insert("r", (9, 2))])  # journaled
        assert pool.stats()["spilled_entries"] == 1
        pool.discard("db0")
        assert pool.stats()["spilled_entries"] == 0
        # A fresh build must not see stale journal entries.
        fresh = build_pool_entry(pool, "db0", PATH, path_database())
        assert fresh.count == count_answers(PATH, path_database()).count
        pool.close()

    def test_journal_cap_falls_back_to_rebuild(self, monkeypatch):
        """A journal outgrowing JOURNAL_LIMIT drops the token's
        checkpoints; the next read rebuilds from the live database and
        stays correct."""
        import repro.dynamic.maintainer as maintainer_module

        monkeypatch.setattr(maintainer_module, "JOURNAL_LIMIT", 3)
        pool = MaintainerPool(capacity=1, budget_bytes=None)
        db0 = path_database()
        build_pool_entry(pool, "db0", PATH, db0)
        build_pool_entry(pool, "db1", PATH, path_database(5))  # spills db0
        current = db0
        for step in range(5):  # overflows the 3-update journal cap
            update = Insert("r", (20 + step, 2))
            pool.apply("db0", [update])
            current = current.with_relation(
                current["r"].union([update.row])
            )
        stats = pool.stats()
        assert stats["journals_dropped"] == 1
        assert stats["spilled_entries"] == 0  # checkpoints were dropped
        entry = build_pool_entry(pool, "db0", PATH, current)
        assert entry.count == count_answers(PATH, current).count
        assert pool.stats()["built"] == 3  # a rebuild, not a restore
        pool.close()

    def test_restore_preevicts_using_checkpoint_size(self):
        """Restoring a checkpoint makes room first, so even the
        transient residency honors the budget (restores never stack a
        DP on top of its victims)."""
        database = Database.from_dict({
            "r": [(i, i % 7) for i in range(150)],
            "s": [(i % 7, i) for i in range(150)],
        })
        probe = build_pool_entry(
            MaintainerPool(budget_bytes=None), "probe", PATH, database
        )
        budget = int(probe.resident_bytes * 1.4)  # one DP, not two
        pool = MaintainerPool(budget_bytes=budget)
        for _round in range(3):
            for index in range(2):
                entry = build_pool_entry(pool, f"db{index}", PATH, database)
                assert entry.count == \
                    count_answers(PATH, database).count
        stats = pool.stats()
        assert stats["restored"] > 0
        assert stats["peak_resident_bytes"] <= budget
        pool.close()

    def test_budget_env_parsing(self, monkeypatch):
        from repro.envknobs import reset_env_warnings

        reset_env_warnings()
        monkeypatch.setenv(MAINTAINER_BUDGET_ENV, "0.5")
        assert maintainer_budget_from_env() == 512 * 1024
        monkeypatch.setenv(MAINTAINER_BUDGET_ENV, "junk")
        with pytest.warns(RuntimeWarning, match=MAINTAINER_BUDGET_ENV):
            assert maintainer_budget_from_env() is None
        monkeypatch.delenv(MAINTAINER_BUDGET_ENV)
        assert maintainer_budget_from_env() is None

    def test_close_removes_owned_spill_directory(self):
        pool = MaintainerPool(capacity=1, budget_bytes=None)
        build_pool_entry(pool, "db0", PATH, path_database())
        build_pool_entry(pool, "db1", PATH, path_database(1))
        directory = pool._spill_dir
        assert directory is not None and os.path.isdir(directory)
        pool.close()
        assert not os.path.exists(directory)


class TestSessionSpillIntegration:
    def test_spill_forced_session_stays_correct(self):
        """A tiny per-shard budget forces spill/restore on every
        database switch; counts must equal the unbudgeted session's."""
        # Three writers x three shapes: several maintainable databases
        # land on each shard, so the tiny budget forces spill/restore on
        # every database switch.
        streams = multi_writer_streams(n_writers=3, n_shapes=3, rounds=2,
                                       seed=41, tuples_per_relation=10)
        expected = []
        for stream in streams:
            with CountingSession(maintainer_budget_bytes=None) as single:
                expected.append(result_counts(single.run_stream(stream)))
        with MultiWriterSession(shards=2, shard_mode="thread",
                                maintainer_budget_bytes=2048) as sharded:
            outcomes = sharded.run_streams(streams)
            stats = sharded.stats()
        assert [result_counts(outcome) for outcome in outcomes] == expected
        pools = [shard["maintainers"] for shard in stats["per_shard"]]
        assert sum(pool["spilled"] for pool in pools) > 0
        assert sum(pool["restored"] for pool in pools) > 0
        for pool in pools:
            assert pool["budget_bytes"] == 2048

    def test_single_writer_session_takes_budget_too(self):
        database = path_database()
        with CountingSession(databases={"main": database},
                             maintainer_budget_bytes=10 ** 9) as session:
            session.count(CountRequest(PATH, "main"))
            pool_stats = session.stats()["maintainers"]
        assert pool_stats["budget_bytes"] == 10 ** 9
        assert pool_stats["resident_bytes"] > 0
        assert pool_stats["peak_resident_bytes"] >= \
            pool_stats["resident_bytes"]


# ----------------------------------------------------------------------
# The sharded session CLI
# ----------------------------------------------------------------------
class TestShardedSessionCLI:
    def test_multi_stream_session_cli(self, tmp_path, capsys):
        prefix = str(tmp_path / "jobs")
        paths = write_multi_writer_streams(prefix, n_writers=2, n_shapes=2,
                                           rounds=2, seed=7,
                                           tuples_per_relation=8)
        output = str(tmp_path / "results.json")
        code = cli_main(["session", *paths, "--shards", "2",
                         "--maintainer-budget-mb", "0.01",
                         "--output", output])
        assert code == 0
        out = capsys.readouterr().out
        assert "writer stream(s)" in out
        assert "shards    : 2" in out
        with open(output) as handle:
            payload = json.load(handle)
        assert any(entry.get("op") == "count" for entry in payload)
        assert all(entry["label"].startswith(("w0/", "w1/"))
                   for entry in payload)

    def test_single_stream_keeps_single_writer_path(self, tmp_path, capsys):
        from repro.workloads.session_stream import write_session_stream

        path = str(tmp_path / "jobs.jsonl")
        write_session_stream(path, n_shapes=2, rounds=1, seed=3,
                             tuples_per_relation=8)
        code = cli_main(["session", path])
        assert code == 0
        out = capsys.readouterr().out
        assert "maintainers:" in out  # the single-writer stats shape

    def test_explicit_shards_with_one_stream(self, tmp_path, capsys):
        from repro.workloads.session_stream import write_session_stream

        path = str(tmp_path / "jobs.jsonl")
        write_session_stream(path, n_shapes=2, rounds=1, seed=3,
                             tuples_per_relation=8)
        code = cli_main(["session", path, "--shards", "2",
                         "--shard-mode", "inline"])
        assert code == 0
        assert "shards    : 2" in capsys.readouterr().out
