"""Shared parsing of the ``REPRO_*`` environment knobs.

Every environment knob in the repository goes through these helpers so a
malformed value is **never silently swallowed**: an unparseable setting
(``REPRO_SESSION_SHARDS=two``) emits one :class:`RuntimeWarning` per
distinct ``(name, value)`` pair and falls back to the knob's default —
visible, deterministic, and impossible to mistake for the knob having
taken effect.

Unset and empty values mean "use the default" and never warn (an empty
string is how the CI matrix expresses "leg does not set this knob").
The knobs currently wired through here:

* ``REPRO_SESSION_SHARDS`` — :func:`repro.service.default_shards`
* ``REPRO_SERVICE_WORKERS`` — :func:`repro.service.default_workers`
* ``REPRO_MAINTAINER_BUDGET_MB`` —
  :func:`repro.dynamic.maintainer.maintainer_budget_from_env`
* ``REPRO_COMPILED`` — :func:`repro.counting.compile.compiled_enabled`
* ``REPRO_BACKEND`` — :func:`repro.db.columnar.default_backend`
  (``tuple`` or ``columnar``; the relation storage / kernel backend)
* ``REPRO_COST_UNITS_PER_MS`` —
  :func:`repro.counting.engine.cost_units_per_ms` (deadline calibration)
* ``REPRO_PLAN_CACHE_DIR`` —
  :func:`repro.counting.plan_cache.default_plan_cache`
* ``REPRO_SHARD_MODE`` — :func:`repro.service.router.default_shard_mode`
  (the default ``MultiWriterSession`` shard flavor; the CI ``net`` leg
  sets ``tcp``)
* ``REPRO_SHARD_ADDRS`` — comma-separated ``host:port`` shard server
  addresses for ``shard_mode='tcp'``
  (:func:`repro.service.net.default_shard_addrs`)
* ``REPRO_NET_TIMEOUT_MS`` / ``REPRO_NET_RETRIES`` — per-request
  timeout and transport retry budget of the networked shard clients
  (:mod:`repro.service.net.client`)

Tests and benchmarks that must run under *their own* knob settings use
:func:`isolated_repro_env`, the one shared snapshot/restore helper (it
also resets the process-wide default plan cache, which may have been
built from a knob that no longer applies inside the sandbox).
"""

from __future__ import annotations

import contextlib
import os
import threading
import warnings
from typing import Iterator, Optional, Sequence, Set, Tuple

#: ``(name, raw value)`` pairs already warned about — one warning per
#: distinct misconfiguration per process, not one per read (knobs like
#: ``REPRO_COMPILED`` are consulted on every count).
_WARNED: Set[Tuple[str, str]] = set()
_WARNED_LOCK = threading.Lock()

#: Accepted spellings for boolean knobs (case-insensitive).
_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"0", "false", "no", "off"})


def _warn_once(name: str, raw: str, expected: str) -> None:
    with _WARNED_LOCK:
        key = (name, raw)
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(
        f"ignoring unparseable environment knob {name}={raw!r} "
        f"(expected {expected}); using the default instead",
        RuntimeWarning,
        stacklevel=4,
    )


def reset_env_warnings() -> None:
    """Forget which misconfigurations were warned about (tests only)."""
    with _WARNED_LOCK:
        _WARNED.clear()


def env_int(name: str, default: Optional[int] = None) -> Optional[int]:
    """``$name`` as an ``int``, or *default*.

    Unset/empty values return *default* silently; an unparseable value
    warns once (per distinct value) and returns *default*.
    """
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        _warn_once(name, raw, "an integer")
        return default


def env_float(name: str, default: Optional[float] = None) -> Optional[float]:
    """``$name`` as a ``float``, or *default* (same contract as
    :func:`env_int`)."""
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        _warn_once(name, raw, "a number")
        return default


def env_flag(name: str, default: bool = True) -> bool:
    """``$name`` as a boolean, or *default*.

    Accepts ``1/true/yes/on`` and ``0/false/no/off`` (case-insensitive);
    anything else warns once and returns *default*.
    """
    raw = os.environ.get(name)
    if not raw:
        return default
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    _warn_once(name, raw, "one of 1/0/true/false/yes/no/on/off")
    return default


def env_choice(name: str, choices: Sequence[str], default: str) -> str:
    """``$name`` restricted to *choices* (case-insensitive), or *default*.

    Unset/empty values return *default* silently; a value outside
    *choices* warns once and returns *default* — same contract as the
    numeric knobs.
    """
    raw = os.environ.get(name)
    if not raw:
        return default
    lowered = raw.strip().lower()
    if lowered in choices:
        return lowered
    _warn_once(name, raw, "one of " + "/".join(choices))
    return default


#: Prefix of every environment knob this repository reads.
ENV_PREFIX = "REPRO_"


@contextlib.contextmanager
def isolated_repro_env(**pins: object) -> Iterator[None]:
    """Run a block under snapshot/restored ``REPRO_*`` knobs.

    On entry every ``REPRO_*`` environment variable is snapshotted and
    the process-wide default plan cache is cleared (so a cache built
    under outside knobs never leaks into the sandbox); *pins* are then
    applied (``NAME=value`` sets the variable, ``NAME=None`` unsets it).
    On exit the environment is restored exactly — pins removed,
    outside-world knobs reinstated — and the previous default plan cache
    is put back.  This is the one shared isolation helper behind the
    ``repro_env_sandbox`` test fixture and the benchmarks' "measure
    under my own knobs" blocks.
    """
    from .counting.plan_cache import set_default_plan_cache

    saved = {name: value for name, value in os.environ.items()
             if name.startswith(ENV_PREFIX)}
    previous_cache = set_default_plan_cache(None)
    try:
        for name, value in pins.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = str(value)
        yield
    finally:
        for name in list(os.environ):
            if name.startswith(ENV_PREFIX) and name not in saved:
                del os.environ[name]
        os.environ.update(saved)
        set_default_plan_cache(previous_cache)
