"""The Figure 13 algorithm: counting via #-relations (Appendix C, Thm. 6.2).

Pichler & Skritek's algorithm, as generalized by the paper to hypertree
decompositions and analyzed in terms of the degree bound ``h``:

* a *#-relation* is a set of substitution sets, each carrying a count;
* initialization partitions each vertex relation ``r_p`` by its projection
  onto the free variables: ``R0_p = { sigma_theta(r_p) }`` with count 1;
* bottom-up, a vertex absorbs each child through the ad-hoc semijoin
  ``R ⋉ R' = { S ⋉ S' | S in R, S' in R', S ⋉ S' != empty }``, summing the
  products of counts of all pairs producing the same surviving set;
* the answer is the sum of the root's counts (product over the roots of a
  forest — components share no variables).

Cost ``O(|vertices| * m^{2k} * 4^h)`` where ``h = bound(D, HD)`` — each
initial group has at most ``h`` tuples, so at most ``2^h`` distinct subsets
survive per group (Theorem 6.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..db.algebra import SubstitutionSet
from ..db.database import Database
from ..decomposition.degree import vertex_relation
from ..decomposition.hypertree import Hypertree
from ..hypergraph.acyclicity import JoinTree
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable

#: A #-relation: substitution sets (hashable, canonical) with counts.
SharpRelation = Dict[SubstitutionSet, int]


def initial_sharp_relation(relation: SubstitutionSet,
                           free: Iterable[Variable]) -> SharpRelation:
    """``R0_p``: partition by the free projection, each class with count 1."""
    groups = relation.group_by(frozenset(free))
    return {group: 1 for group in groups.values()}


def sharp_semijoin(left: SharpRelation, right: SharpRelation
                   ) -> SharpRelation:
    """``R ⋉ R'`` with count aggregation (the inner loop of Figure 13)."""
    result: SharpRelation = {}
    for left_set, left_count in left.items():
        for right_set, right_count in right.items():
            survivors = left_set.semijoin(right_set)
            if survivors:
                weight = left_count * right_count
                result[survivors] = result.get(survivors, 0) + weight
    return result


def count_sharp_relations(relations: Sequence[SubstitutionSet],
                          tree: JoinTree,
                          free: Iterable[Variable]) -> int:
    """Run Figure 13 over per-vertex relations on a join-tree shape.

    *relations[i]* is the relation of vertex ``i``; *free* is the set of
    output variables the answers are counted over.  Works for any family
    whose join tree is valid for the relations' schemas.
    """
    free = frozenset(free)
    if not relations:
        return 0
    sharp: List[SharpRelation] = [
        initial_sharp_relation(relation, free) for relation in relations
    ]
    answer = 1
    for vertex, parent, children in tree.rooted_orders():
        current = sharp[vertex]
        for child in children:
            current = sharp_semijoin(current, sharp[child])
            if not current:
                return 0
        sharp[vertex] = current
        if parent is None:
            answer *= sum(current.values())
    return answer


def relations_for_hypertree(query: ConjunctiveQuery, database: Database,
                            hypertree: Hypertree) -> List[SubstitutionSet]:
    """Per-vertex relations ``r_p = pi_chi(p)(join of lambda(p))``."""
    return [
        vertex_relation(chi, lam, database)
        for chi, lam in zip(hypertree.chis, hypertree.lams)
    ]


def count_via_hypertree(query: ConjunctiveQuery, database: Database,
                        hypertree: Hypertree) -> int:
    """Theorem 6.2's counting procedure for a width-``k`` decomposition.

    The decomposition is completed first (every atom into some ``lambda``),
    exactly as in the theorem's proof; the join-tree shape then carries the
    Figure 13 dynamic program.
    """
    complete = hypertree.completed_for(query)
    relations = relations_for_hypertree(query, database, complete)
    return count_sharp_relations(
        relations, complete.join_tree(), query.free_variables
    )
