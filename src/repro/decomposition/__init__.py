"""Decomposition methods: tree projections, GHDs, #-decompositions, hybrids."""

from .degree import (
    d_optimal_decomposition,
    degree_at_vertex,
    degree_bound,
    vertex_relation,
)
from .fractional import (
    fractional_edge_cover_number,
    fractional_width_of_tree,
)
from .ghd import (
    find_ghd_join_tree,
    generalized_hypertree_width,
    ghd_of_query,
    is_width_witness,
    union_view_hypergraph,
)
from .hybrid import (
    HybridDecomposition,
    evaluate_pseudo_free,
    find_hybrid_decomposition,
    quick_pseudo_free_candidates,
)
from .hypertree import (
    Hypertree,
    hypertree_from_join_tree,
    minimal_atom_cover,
)
from .serialize import (
    PLAN_FORMAT_VERSION,
    PlanSerializationError,
    deserialize_plan,
    serialize_plan,
)
from .sharp import (
    SharpDecomposition,
    all_colored_cores,
    find_sharp_decomposition,
    find_sharp_hypertree_decomposition,
    is_sharp_covered,
    sharp_cover_hypergraph,
    sharp_hypertree_width,
)
from .tree_projection import (
    candidate_bags,
    find_min_cost_tree_projection,
    find_tree_projection,
    has_tree_projection,
    tree_projection,
)
from .treedec import (
    exact_treewidth,
    min_fill_order,
    tree_decomposition_from_order,
    treewidth,
    treewidth_upper_bound,
)

__all__ = [
    "d_optimal_decomposition",
    "degree_at_vertex",
    "degree_bound",
    "vertex_relation",
    "fractional_edge_cover_number",
    "fractional_width_of_tree",
    "find_ghd_join_tree",
    "generalized_hypertree_width",
    "ghd_of_query",
    "is_width_witness",
    "union_view_hypergraph",
    "HybridDecomposition",
    "evaluate_pseudo_free",
    "find_hybrid_decomposition",
    "quick_pseudo_free_candidates",
    "Hypertree",
    "hypertree_from_join_tree",
    "minimal_atom_cover",
    "PLAN_FORMAT_VERSION",
    "PlanSerializationError",
    "deserialize_plan",
    "serialize_plan",
    "SharpDecomposition",
    "all_colored_cores",
    "find_sharp_decomposition",
    "find_sharp_hypertree_decomposition",
    "is_sharp_covered",
    "sharp_cover_hypergraph",
    "sharp_hypertree_width",
    "candidate_bags",
    "find_min_cost_tree_projection",
    "find_tree_projection",
    "has_tree_projection",
    "tree_projection",
    "exact_treewidth",
    "min_fill_order",
    "tree_decomposition_from_order",
    "treewidth",
    "treewidth_upper_bound",
]
