"""Tests for the union-of-CQ machinery (:mod:`repro.ucq`)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting.brute_force import count_brute_force
from repro.db import Database
from repro.exceptions import QueryError
from repro.query import parse_query
from repro.query.terms import Variable
from repro.ucq import (
    UnionQuery,
    conjoin,
    conjoin_all,
    count_union,
    count_union_brute_force,
    disjunct_is_subsumed,
    parse_ucq,
    prune_subsumed_disjuncts,
    rename_existentials_apart,
)
from repro.workloads.random_instances import random_instance


class TestUnionQuery:
    def test_parse_two_disjuncts(self):
        union = parse_ucq("ans(A) :- r(A, B) ; ans(A) :- s(A)")
        assert len(union) == 2
        assert {v.name for v in union.free_variables} == {"A"}

    def test_single_disjunct(self):
        union = parse_ucq("ans(A, B) :- r(A, B)")
        assert len(union) == 1

    def test_empty_text_rejected(self):
        with pytest.raises(QueryError):
            parse_ucq("  ;  ")

    def test_mismatched_schemas_rejected(self):
        with pytest.raises(QueryError):
            parse_ucq("ans(A) :- r(A, B) ; ans(B) :- r(A, B)")

    def test_equality_ignores_order(self):
        u1 = parse_ucq("ans(A) :- r(A, B) ; ans(A) :- s(A)")
        u2 = parse_ucq("ans(A) :- s(A) ; ans(A) :- r(A, B)")
        assert u1 == u2
        assert hash(u1) == hash(u2)

    def test_relation_symbols_union(self):
        union = parse_ucq("ans(A) :- r(A, B) ; ans(A) :- s(A)")
        assert union.relation_symbols() == {"r", "s"}

    def test_iteration_preserves_order(self):
        union = parse_ucq("ans(A) :- r(A, B) ; ans(A) :- s(A)")
        assert [q.atoms_sorted()[0].relation for q in union] == ["r", "s"]


class TestRenameApart:
    def test_existentials_renamed(self):
        query = parse_query("ans(A) :- r(A, B), s(B, C)")
        renamed = rename_existentials_apart(query, "_x")
        names = {v.name for v in renamed.variables}
        assert names == {"A", "B_x", "C_x"}
        assert renamed.free_variables == query.free_variables

    def test_quantifier_free_unchanged(self):
        query = parse_query("ans(A, B) :- r(A, B)")
        assert rename_existentials_apart(query, "_x") is query

    def test_collision_rejected(self):
        query = parse_query("ans(A) :- r(A, B), s(B, B_x)")
        with pytest.raises(QueryError):
            rename_existentials_apart(query, "_x")


class TestConjoin:
    def test_atoms_union_with_disjoint_existentials(self):
        q1 = parse_query("ans(A) :- r(A, B)")
        q2 = parse_query("ans(A) :- s(A, B)")
        merged = conjoin(q1, q2)
        assert len(merged.atoms) == 2
        existentials = {v.name for v in merged.existential_variables}
        assert existentials == {"B_c0", "B_c1"}

    def test_conjoin_counts_intersection(self):
        q1 = parse_query("ans(A) :- r(A, B)")
        q2 = parse_query("ans(A) :- s(A, C)")
        database = Database.from_dict({
            "r": [(1, 2), (2, 3), (5, 5)],
            "s": [(2, 9), (4, 9)],
        })
        merged = conjoin(q1, q2)
        # r-answers {1, 2, 5}; s-answers {2, 4}; intersection {2}.
        assert count_brute_force(merged, database) == 1

    def test_mismatched_schemas_rejected(self):
        q1 = parse_query("ans(A) :- r(A, B)")
        q2 = parse_query("ans(B) :- s(A, B)")
        with pytest.raises(QueryError):
            conjoin(q1, q2)

    def test_conjoin_all_requires_input(self):
        with pytest.raises(QueryError):
            conjoin_all([])

    def test_self_conjunction_is_idempotent_on_answers(self):
        q = parse_query("ans(A) :- r(A, B)")
        database = Database.from_dict({"r": [(1, 2), (3, 4)]})
        merged = conjoin(q, q)
        assert count_brute_force(merged, database) == \
            count_brute_force(q, database)


class TestSubsumption:
    def test_specialization_is_subsumed(self):
        specific = parse_query("ans(A) :- r(A, B), s(A, B)")
        general = parse_query("ans(A) :- r(A, C)")
        assert disjunct_is_subsumed(specific, general)
        assert not disjunct_is_subsumed(general, specific)

    def test_different_schemas_never_subsume(self):
        q1 = parse_query("ans(A) :- r(A, B)")
        q2 = parse_query("ans(A, B) :- r(A, B)")
        assert not disjunct_is_subsumed(q1, q2)

    def test_equivalent_disjuncts_keep_one(self):
        union = parse_ucq(
            "ans(A) :- r(A, B) ; ans(A) :- r(A, C)"
        )
        assert len(prune_subsumed_disjuncts(union)) == 1

    def test_incomparable_disjuncts_survive(self):
        union = parse_ucq("ans(A) :- r(A, B) ; ans(A) :- s(A, B)")
        assert len(prune_subsumed_disjuncts(union)) == 2

    def test_later_general_disjunct_absorbs_earlier(self):
        union = parse_ucq(
            "ans(A) :- r(A, B), s(A, B) ; ans(A) :- r(A, C)"
        )
        pruned = prune_subsumed_disjuncts(union)
        assert len(pruned) == 1
        assert pruned.disjuncts[0].relation_symbols == {"r"}


class TestCountUnion:
    DATABASE = Database.from_dict({
        "r": [(1, 2), (2, 3), (5, 5)],
        "s": [(2, 9), (4, 9)],
    })

    def test_matches_brute_force(self):
        union = parse_ucq("ans(A) :- r(A, B) ; ans(A) :- s(A, C)")
        expected = count_union_brute_force(union, self.DATABASE)
        assert count_union(union, self.DATABASE) == expected
        assert expected == 4  # {1, 2, 5} union {2, 4}

    def test_single_disjunct_is_plain_count(self):
        union = parse_ucq("ans(A) :- r(A, B)")
        assert count_union(union, self.DATABASE) == 3

    def test_three_disjuncts(self):
        union = parse_ucq(
            "ans(A) :- r(A, B) ; ans(A) :- s(A, C) ; ans(A) :- r(B, A)"
        )
        expected = count_union_brute_force(union, self.DATABASE)
        assert count_union(union, self.DATABASE) == expected

    def test_custom_counter_is_used(self):
        calls = []

        def counter(query, database):
            calls.append(query)
            return count_brute_force(query, database)

        union = parse_ucq("ans(A) :- r(A, B) ; ans(A) :- s(A, C)")
        result = count_union(union, self.DATABASE, counter=counter)
        assert result == 4
        assert len(calls) == 3  # two singletons + one pair

    def test_disabling_pruning_still_correct(self):
        union = parse_ucq(
            "ans(A) :- r(A, B), s(A, B) ; ans(A) :- r(A, C)"
        )
        with_pruning = count_union(union, self.DATABASE, prune=True)
        without = count_union(union, self.DATABASE, prune=False)
        assert with_pruning == without

    def test_overlapping_disjuncts_not_double_counted(self):
        union = parse_ucq("ans(A) :- r(A, B) ; ans(A) :- r(A, C)")
        assert count_union(union, self.DATABASE) == 3

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_random_pairs_match_brute_force(self, seed):
        q1, database = random_instance(
            n_variables=4, n_atoms=3, domain_size=4,
            tuples_per_relation=10, seed=seed,
        )
        free = sorted(q1.free_variables, key=lambda v: v.name)
        if not free:
            free = sorted(q1.variables, key=lambda v: v.name)[:1]
            q1 = q1.with_free(free)
        # Second disjunct: a single-atom query over one of q1's atoms,
        # re-freed to the same schema when possible.
        atom = q1.atoms_sorted()[0]
        if not set(free) <= set(atom.variables):
            return  # schema mismatch; skip this draw
        q2 = q1.restrict_to_atoms([atom]).with_free(free)
        union = UnionQuery((q1, q2))
        assert count_union(union, database, prune=False) == \
            count_union_brute_force(union, database)
