"""Tests for exact uniform answer sampling (:mod:`repro.approx.sampler`)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx import AnswerSampler, sample_answers
from repro.counting.brute_force import count_brute_force
from repro.db import Database
from repro.db.algebra import SubstitutionSet
from repro.exceptions import DecompositionNotFoundError
from repro.homomorphism.solver import has_homomorphism
from repro.hypergraph.acyclicity import JoinTree
from repro.query import parse_query
from repro.query.terms import Variable, make_variables
from repro.workloads.random_instances import random_instance

A, B, C = make_variables("A", "B", "C")


def answer_key(answer):
    return tuple(sorted((v.name, value) for v, value in answer.items()))


class TestSamplerConstruction:
    def test_count_matches_brute_force(self, path_query, path_database):
        sampler = AnswerSampler.for_query(path_query, path_database)
        assert len(sampler) == count_brute_force(path_query, path_database)

    def test_empty_answer_set(self):
        query = parse_query("ans(A) :- r(A, B), s(B)")
        database = Database.from_dict({"r": [(1, 2)], "s": [(9,)]})
        sampler = AnswerSampler.for_query(query, database)
        assert len(sampler) == 0
        with pytest.raises(IndexError):
            sampler.sample()

    def test_undecomposable_query_raises(self):
        # A 3-clique of frontier edges cannot fit width 1.
        query = parse_query(
            "ans(A, B, C) :- r(A, B), s(B, C), t(C, A), u(A, X), "
            "u(B, X), u(C, X)"
        )
        with pytest.raises(DecompositionNotFoundError):
            AnswerSampler.for_query(query, Database.from_dict({
                "r": [(1, 2)], "s": [(2, 3)], "t": [(3, 1)], "u": [(1, 9)],
            }), max_width=0)

    def test_direct_construction_from_bags(self):
        bags = [
            SubstitutionSet((A, B), [(1, 10), (1, 11), (2, 10)]),
            SubstitutionSet((B, C), [(10, 5), (11, 5), (10, 6)]),
        ]
        tree = JoinTree(
            (frozenset({A, B}), frozenset({B, C})), ((0, 1),)
        )
        sampler = AnswerSampler(bags, tree, random.Random(0))
        # Join: (1,10,5), (1,10,6), (1,11,5), (2,10,5), (2,10,6).
        assert len(sampler) == 5


class TestSampleValidity:
    def test_samples_are_answers(self, path_query, path_database):
        sampler = AnswerSampler.for_query(
            path_query, path_database, rng=random.Random(1)
        )
        for _ in range(50):
            answer = sampler.sample()
            assert set(answer) == set(path_query.free_variables)
            assert has_homomorphism(path_query, path_database, fixed=answer)

    def test_samples_cover_answer_set(self, path_query, path_database):
        sampler = AnswerSampler.for_query(
            path_query, path_database, rng=random.Random(2)
        )
        seen = {answer_key(a) for a in sampler.sample_many(400)}
        assert len(seen) == len(sampler)

    def test_uniformity_chi_square_sanity(self):
        # 5 answers, 5000 draws: every cell within 3 sigma of uniform.
        query = parse_query("ans(A, C) :- r(A, B), s(B, C)")
        database = Database.from_dict({
            "r": [(1, 10), (1, 11), (2, 10), (3, 12)],
            "s": [(10, 5), (10, 6), (11, 5), (12, 7)],
        })
        sampler = AnswerSampler.for_query(query, database,
                                          rng=random.Random(3))
        n, k = 5000, len(sampler)
        freq = Counter(answer_key(a) for a in sampler.sample_many(n))
        expected = n / k
        sigma = (n * (1 / k) * (1 - 1 / k)) ** 0.5
        assert len(freq) == k
        for count in freq.values():
            assert abs(count - expected) < 4 * sigma

    def test_existential_multiplicity_does_not_bias(self):
        # Answer (1,) has 3 witnesses, answer (2,) has 1: uniform sampling
        # over answers must NOT weight by witnesses.
        query = parse_query("ans(A) :- r(A, B)")
        database = Database.from_dict({
            "r": [(1, 10), (1, 11), (1, 12), (2, 10)],
        })
        sampler = AnswerSampler.for_query(query, database,
                                          rng=random.Random(4))
        assert len(sampler) == 2
        freq = Counter(answer_key(a) for a in sampler.sample_many(3000))
        counts = sorted(freq.values())
        assert counts[0] > 1200  # roughly half each, not 1/4 vs 3/4

    def test_seeded_sampling_is_deterministic(self, path_query,
                                              path_database):
        first = sample_answers(path_query, path_database, 10, seed=42)
        second = sample_answers(path_query, path_database, 10, seed=42)
        assert list(map(answer_key, first)) == list(map(answer_key, second))


class TestRandomizedSampler:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_count_and_membership_on_random_acyclic(self, seed):
        query, database = random_instance(
            n_atoms=3, acyclic=True, domain_size=4,
            tuples_per_relation=8, seed=seed,
        )
        try:
            sampler = AnswerSampler.for_query(query, database, max_width=2)
        except DecompositionNotFoundError:
            return
        assert len(sampler) == count_brute_force(query, database)
        if len(sampler):
            answer = sampler.sample()
            assert has_homomorphism(query, database, fixed=answer)
