"""E17 — [GS13] (Section 1.1): enumeration with polynomial delay.

Paper context: over #-covered queries, the answers can be *enumerated* with
polynomial delay, but counting them is the harder problem this paper
solves.  We benchmark (a) full enumeration vs the structural counter on the
same instance — counting must not pay per answer; (b) first-answer delay
staying flat as the database grows.
"""

import pytest

from repro.counting.brute_force import count_brute_force
from repro.counting.enumeration import enumerate_answers, iter_answers
from repro.counting.structural import count_structural
from repro.workloads import q0, workforce_database


@pytest.mark.benchmark(group="gs13-enumerate")
def test_full_enumeration(benchmark):
    query = q0()
    database = workforce_database(n_workers=60, seed=29)
    listed = benchmark(enumerate_answers, query, database)
    assert len(listed) == count_brute_force(query, database)


@pytest.mark.benchmark(group="gs13-enumerate")
def test_counting_without_enumeration(benchmark):
    query = q0()
    database = workforce_database(n_workers=60, seed=29)
    count = benchmark(count_structural, query, database, 2)
    assert count == count_brute_force(query, database)


@pytest.mark.benchmark(group="gs13-first-answer")
@pytest.mark.parametrize("workers", [40, 160])
def test_first_answer_delay(benchmark, workers):
    query = q0()
    database = workforce_database(n_workers=workers, seed=29)

    def first():
        return next(iter_answers(query, database), None)

    answer = benchmark(first)
    assert answer is not None
