"""Unit tests for [W]-components and frontiers (Section 3.1, Example 3.2)."""

from repro.hypergraph.components import (
    component_frontiers,
    component_of,
    components,
    edges_of_component,
    frontier,
)
from repro.query.terms import Variable
from repro.workloads import q0

import pytest

A, B, C, D, E, F, G, H, I = (Variable(x) for x in "ABCDEFGHI")


class TestComponents:
    def test_q0_free_components(self):
        """Removing {A,B,C} from H_Q0 yields {I}, {E}, {D,F,G,H} (Sec. 1.2)."""
        h = q0().hypergraph()
        comps = components(h, {A, B, C})
        assert set(comps) == {
            frozenset({I}),
            frozenset({E}),
            frozenset({D, F, G, H}),
        }

    def test_component_of(self):
        h = q0().hypergraph()
        assert component_of(h, {A, B, C}, D) == frozenset({D, F, G, H})

    def test_component_of_banned_node_raises(self):
        h = q0().hypergraph()
        with pytest.raises(ValueError):
            component_of(h, {A, B, C}, A)

    def test_component_of_unknown_node_raises(self):
        h = q0().hypergraph()
        with pytest.raises(ValueError):
            component_of(h, {A, B, C}, Variable("Z"))

    def test_empty_banned_set_gives_connected_components(self):
        h = q0().hypergraph()
        assert components(h, ()) == (frozenset(h.nodes),)

    def test_edges_of_component(self):
        h = q0().hypergraph()
        edges = edges_of_component(h, {I})
        assert edges == frozenset({frozenset({A, B, I})})


class TestFrontier:
    def test_example_3_2_frontier_of_A(self):
        """Fr(A, {D,E,G}) = {D, E} (Figure 6(a))."""
        h = q0().hypergraph()
        assert frontier(A, {D, E, G}, h) == frozenset({D, E})

    def test_example_3_2_frontier_of_H(self):
        """Fr(H, {D,E,G}) = {D, G} (Figure 6(b))."""
        h = q0().hypergraph()
        assert frontier(H, {D, E, G}, h) == frozenset({D, G})

    def test_frontier_of_banned_variable_is_empty(self):
        h = q0().hypergraph()
        assert frontier(D, {D, E, G}, h) == frozenset()

    def test_intro_frontiers_wrt_free_variables(self):
        """Fr(I)={A,B}, Fr(E)={B}, Fr(D)=...={B,C} (Section 1.2)."""
        h = q0().hypergraph()
        free = {A, B, C}
        assert frontier(I, free, h) == frozenset({A, B})
        assert frontier(E, free, h) == frozenset({B})
        for existential in (D, F, G, H):
            assert frontier(existential, free, h) == frozenset({B, C})

    def test_all_variables_in_component_share_frontier(self):
        h = q0().hypergraph()
        frontiers = component_frontiers(h, {A, B, C})
        for component, shared in frontiers.items():
            for member in component:
                assert frontier(member, {A, B, C}, h) == shared
