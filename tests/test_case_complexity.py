"""Unit tests for the executable case-complexity reductions (Section 5)."""

import random

import pytest

from repro.counting.brute_force import count_brute_force
from repro.db import Database, Relation
from repro.homomorphism import is_core
from repro.query import Variable, color_symbol, fullcolor, parse_query
from repro.query.coloring import color
from repro.reductions.case_complexity import (
    automorphism_free_restrictions,
    count_fullcolor_via_oracle,
    count_simple_via_oracle,
    simple_instance_for,
    simple_query_of,
)


def _colored_database(query, domain_size, tuples, seed):
    """A database with base relations plus r_X domains for every variable."""
    rng = random.Random(seed)
    relations = []
    for symbol in sorted(query.relation_symbols):
        arity = next(a.arity for a in query.atoms if a.relation == symbol)
        rows = {
            tuple(rng.randrange(domain_size) for _ in range(arity))
            for _ in range(tuples)
        }
        relations.append(Relation(symbol, arity, rows))
    for variable in sorted(query.variables, key=lambda v: v.name):
        size = rng.randrange(2, domain_size + 1)
        rows = {(x,) for x in rng.sample(range(domain_size), size)}
        relations.append(Relation(color_symbol(variable), 1, rows))
    return Database(relations)


class TestAutomorphisms:
    def test_rigid_query_has_one(self):
        q = parse_query("ans(A) :- r(A, B), s(B, C)")
        assert automorphism_free_restrictions(q) == 1

    def test_symmetric_query_has_two(self):
        # swapping A and B is an automorphism fixing nothing else
        q = parse_query("ans(A, B) :- e(A, B), e(B, A)")
        assert automorphism_free_restrictions(q) == 2


class TestLemma510:
    @pytest.mark.parametrize("text", [
        "ans(A, C) :- r(A, B), s(B, C)",
        "ans(A) :- r(A, B), s(B, C), t(C, A)",
        "ans(A, B) :- e(A, B)",
    ])
    def test_matches_brute_force(self, text):
        query = parse_query(text)
        assert is_core(color(query)), "test premise: coloring must be a core"
        for seed in range(3):
            database = _colored_database(query, 4, 8, seed)
            expected = count_brute_force(fullcolor(query), database)
            got = count_fullcolor_via_oracle(query, database)
            assert got == expected, f"{text} seed={seed}"

    def test_boolean_query(self):
        query = parse_query("ans() :- r(A, B)")
        database = _colored_database(query, 3, 4, 0)
        expected = count_brute_force(fullcolor(query), database)
        assert count_fullcolor_via_oracle(query, database) == expected

    def test_constants_rejected(self):
        query = parse_query("ans(A) :- r(A, 7)")
        with pytest.raises(ValueError):
            count_fullcolor_via_oracle(query, Database.from_dict({"r": [(1, 7)]}))

    def test_oracle_is_actually_used(self):
        query = parse_query("ans(A, C) :- r(A, B), s(B, C)")
        database = _colored_database(query, 3, 6, 2)
        calls = []

        def oracle(q, d):
            calls.append(1)
            return count_brute_force(q, d)

        count_fullcolor_via_oracle(query, database, oracle)
        # 2^|free| subsets times |free|+1 interpolation points = 4 * 3
        assert len(calls) == 12


class TestSimpleQueryReduction:
    def test_simple_query_of_renames_apart(self):
        q = parse_query("ans(A) :- r(A, B), r(B, C)")
        simple, renaming = simple_query_of(q)
        assert simple.is_simple()
        assert len(renaming) == 2

    @pytest.mark.parametrize("text", [
        "ans(A, C) :- r(A, B), r(B, C)",      # repeated symbol
        "ans(A) :- r(A, B), s(B, C)",
    ])
    def test_corollary_5_17_matches_brute_force(self, text):
        query = parse_query(text)
        simple, _renaming = simple_instance_for(query)
        rng = random.Random(13)
        relations = []
        for atom in simple.atoms_sorted():
            rows = {
                tuple(rng.randrange(4) for _ in range(atom.arity))
                for _ in range(8)
            }
            relations.append(Relation(atom.relation, atom.arity, rows))
        database = Database(relations)
        expected = count_brute_force(simple, database)
        got = count_simple_via_oracle(query, database)
        assert got == expected, text
