"""The shard directory: databases -> addresses, with handoff and failover.

A :class:`ShardDirectory` is the small control plane of the networked
fabric.  It assigns each database to one shard server address (a stable
hash, like the in-process router), keeps per-database *recovery
material* — the origin snapshot (a verifying handoff envelope captured
at attach) plus the journal of every acknowledged update since — and
uses that material to move databases between servers:

* **graceful handoff** (:meth:`handoff`): pause the database's traffic,
  pull a *fresh* checkpoint from the owning server (spill to envelope,
  ship bytes), restore it on the target, flip the assignment, resume.
  The fresh checkpoint already contains every acknowledged update, so
  the journal resets — nothing is replayed, nothing lost, nothing
  doubled.  The pause is the checkpoint-ship-restore window, which the
  benchmark bounds.
* **crash failover** (automatic): when a server stops answering
  (transport retries exhausted — the mid-stream kill scenario), every
  database assigned to it is rebuilt on a standby from its origin
  envelope plus a journal replay, in acknowledgement order.  The job
  that surfaced the failure was *not* acknowledged, so it is not in the
  journal; it is resubmitted once after recovery — exactly-once with
  respect to the rebuilt state.

Ordering: each database has its own single-worker executor, so its jobs
execute in submission order across handoffs and failovers; databases
proceed in parallel, bounded by one connection per server address.
"""

from __future__ import annotations

import base64
import hashlib
import threading
import time
import uuid
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ...db.io import database_to_dict
from ...decomposition.serialize import serialize_handoff_state
from ...exceptions import ReproError
from ..router import SessionRouter
from ..session import AttachDatabase, SessionJob, UpdateRequest
from .client import ShardClient
from .frames import TransportError


class _AddressState:
    """One server address: its client plus the confinement lock."""

    def __init__(self, client: ShardClient):
        self.client = client
        self.lock = threading.Lock()


class ShardDirectory:
    """Assign databases to shard servers; survive their deaths.

    Parameters
    ----------
    addresses:
        The primary shard server addresses (``host:port``).
    standbys:
        Spare addresses promoted on failover (exhausted in order; after
        that, surviving primaries absorb the failed server's databases).
    shard:
        The server-side shard name this directory drives its jobs into
        (namespaced per directory by default, so directories sharing
        servers stay isolated).
    journal_cap:
        Truncation threshold for per-database journals.  Once a journal
        reaches this many acknowledged updates, the directory pulls a
        fresh checkpoint from the owning server (on the database's own
        lane, so no job interleaves), makes it the new origin, and drops
        the journal — bounding both recovery-material memory and
        failover replay length.  ``None`` disables truncation.
    """

    def __init__(self, addresses: Sequence[str],
                 standbys: Sequence[str] = (),
                 shard: Optional[str] = None,
                 timeout_ms: Optional[float] = None,
                 retries: Optional[int] = None,
                 journal_cap: Optional[int] = None):
        if journal_cap is not None and journal_cap < 1:
            raise ValueError("journal_cap must be at least 1")
        if not addresses:
            raise ValueError("a shard directory needs at least one address")
        self.shard = shard or f"dir-{uuid.uuid4().hex[:12]}/shard0"
        self._timeout_ms = timeout_ms
        self._retries = retries
        self._lock = threading.Lock()
        self._addresses: List[str] = list(addresses)
        self._standbys: List[str] = list(standbys)
        self._failed: set = set()
        self._states: Dict[str, _AddressState] = {}
        self._assignment: Dict[str, str] = {}
        self._origins: Dict[str, str] = {}      # db -> envelope (base64)
        self._journals: Dict[str, List[SessionJob]] = {}
        self._pools: Dict[str, ThreadPoolExecutor] = {}
        self._recovery_events: Dict[str, threading.Event] = {}
        self._recovery_errors: Dict[str, TransportError] = {}
        self._closed = False
        self._journal_cap = journal_cap
        self.failovers = 0
        self.handoffs = 0
        self.truncations = 0

    # ------------------------------------------------------------------
    def _state_for(self, address: str) -> _AddressState:
        with self._lock:
            state = self._states.get(address)
            if state is None:
                state = _AddressState(ShardClient(
                    address, timeout_ms=self._timeout_ms,
                    retries=self._retries,
                ))
                self._states[address] = state
            return state

    def _assign(self, database: str) -> str:
        """The database's address, assigning stably on first sight."""
        with self._lock:
            address = self._assignment.get(database)
            if address is None:
                live = [address for address in self._addresses
                        if address not in self._failed]
                if not live:
                    raise ReproError("no live shard server addresses")
                digest = hashlib.sha256(database.encode("utf-8")).digest()
                address = live[int.from_bytes(digest[:8], "big") % len(live)]
                self._assignment[database] = address
            return address

    def _pool_for(self, database: str) -> ThreadPoolExecutor:
        with self._lock:
            pool = self._pools.get(database)
            if pool is None:
                if self._closed:
                    raise ReproError("shard directory is closed")
                pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"dir-{database}"
                )
                self._pools[database] = pool
            return pool

    def assignment(self) -> Dict[str, str]:
        """A snapshot of ``{database: address}``."""
        with self._lock:
            return dict(self._assignment)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def submit(self, job: SessionJob) -> Future:
        """Enqueue *job* on its database's lane; thread-safe."""
        database = SessionRouter.database_of(job)
        self._assign(database)
        return self._pool_for(database).submit(self._execute, database, job)

    def run_stream(self, jobs: Sequence[SessionJob]) -> List[object]:
        """Run one stream; results in job order (failover-transparent)."""
        futures = [self.submit(job) for job in jobs]
        return [future.result() for future in futures]

    def _execute(self, database: str, job: SessionJob):
        # Two rounds: the primary attempt, then one attempt after
        # failover recovery.  A second consecutive dead server is a
        # fleet outage, not something a directory can mask.
        for round_ in range(2):
            with self._lock:
                address = self._assignment[database]
            state = self._state_for(address)
            try:
                with state.lock:
                    result = state.client.submit_job(self.shard, job)
            except TransportError:
                if round_ == 1:
                    raise
                self._failover(address)
                continue
            self._record(database, job)
            return result
        raise TransportError(  # pragma: no cover - loop always returns
            f"shard server for {database!r} is unreachable"
        )

    def _record(self, database: str, job: SessionJob) -> None:
        """Track acknowledged jobs as recovery material."""
        if isinstance(job, AttachDatabase):
            envelope = self._checkpoint_from_job(job)
            with self._lock:
                self._origins[database] = envelope
                self._journals[database] = []
        elif isinstance(job, UpdateRequest):
            with self._lock:
                journal = self._journals.setdefault(database, [])
                journal.append(job)
                cap = self._journal_cap
                full = cap is not None and len(journal) >= cap
            if full:
                self._truncate_journal(database)

    def _truncate_journal(self, database: str) -> None:
        """Fold the journal into a fresh origin checkpoint.

        Runs on the database's single-worker lane right after an
        acknowledged update, so the checkpoint cannot interleave with
        another of this database's jobs.  A transport failure here is
        harmless — the old origin plus the (longer) journal remains a
        complete recovery recipe, and the next acknowledged update
        retries the truncation.
        """
        with self._lock:
            address = self._assignment.get(database)
            if address is None:
                return
        state = self._state_for(address)
        try:
            with state.lock:
                checkpoint = state.client.checkpoint(self.shard, database)
        except TransportError:
            return
        envelope = checkpoint["envelope"]
        with self._lock:
            # The assignment may have moved under a concurrent failover;
            # the fresh checkpoint is only authoritative for the server
            # it was taken from.
            if self._assignment.get(database) != address:
                return
            self._origins[database] = envelope
            self._journals[database] = []
            self.truncations += 1

    @staticmethod
    def _checkpoint_from_job(job: AttachDatabase) -> str:
        """The origin envelope of an attach, built locally — identical
        in shape to a server checkpoint, so restore treats both alike."""
        payload = {
            "database": job.name,
            "relations": database_to_dict(job.database),
            "total_tuples": job.database.total_tuples(),
        }
        return base64.b64encode(
            serialize_handoff_state(payload)
        ).decode("ascii")

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------
    def handoff(self, database: str, to_address: str) -> dict:
        """Gracefully move *database* to *to_address*.

        Runs on the database's own lane, so queued jobs simply wait out
        the pause and resume against the new owner — no job is lost,
        reordered, or doubled.  Returns timing and provenance of the
        move (``paused_s`` is the full checkpoint-ship-restore window).
        """
        self._state_for(to_address)  # validate the address eagerly
        return self._pool_for(database).submit(
            self._do_handoff, database, to_address
        ).result()

    def _do_handoff(self, database: str, to_address: str) -> dict:
        started = time.monotonic()
        with self._lock:
            source = self._assignment.get(database)
        if source is None:
            raise ReproError(f"database {database!r} is not assigned")
        if source == to_address:
            return {"database": database, "from": source, "to": to_address,
                    "moved": False, "paused_s": 0.0}
        source_state = self._state_for(source)
        with source_state.lock:
            checkpoint = source_state.client.checkpoint(self.shard, database)
        envelope = checkpoint["envelope"]
        target_state = self._state_for(to_address)
        with target_state.lock:
            target_state.client.restore(self.shard, database, envelope)
        with self._lock:
            self._assignment[database] = to_address
            # The fresh checkpoint subsumes every acknowledged update.
            self._origins[database] = envelope
            self._journals[database] = []
            self.handoffs += 1
        return {
            "database": database, "from": source, "to": to_address,
            "moved": True, "total_tuples": checkpoint["total_tuples"],
            "paused_s": time.monotonic() - started,
        }

    def _next_replacement(self) -> Optional[str]:
        """The failover target: the first unused standby, else a
        surviving primary (caller holds the lock)."""
        for address in self._standbys:
            if address not in self._failed \
                    and address not in self._addresses:
                self._addresses.append(address)
                return address
        for address in self._addresses:
            if address not in self._failed:
                return address
        return None

    def _failover(self, address: str) -> None:
        """Rebuild every database of *address* elsewhere (origin +
        journal replay); exactly one lane performs the recovery, every
        other lane blocks until it has fully completed — a lane must
        never race ahead of its own database's journal replay."""
        with self._lock:
            event = self._recovery_events.get(address)
            if event is None:
                event = threading.Event()
                self._recovery_events[address] = event
                owner = True
                self._failed.add(address)
                self.failovers += 1
                doomed = [database for database, holder
                          in self._assignment.items() if holder == address]
                recovery: List[Tuple[str, str, str, List[SessionJob]]] = []
                plan_error: Optional[TransportError] = None
                for database in doomed:
                    replacement = self._next_replacement()
                    origin = self._origins.get(database)
                    if replacement is None:
                        plan_error = TransportError(
                            f"shard server {address} died and no standby "
                            f"or surviving primary is available"
                        )
                        break
                    if origin is None:
                        plan_error = TransportError(
                            f"shard server {address} died before database "
                            f"{database!r} recorded an origin checkpoint"
                        )
                        break
                    journal = list(self._journals.get(database, ()))
                    recovery.append((database, replacement, origin,
                                     journal))
                    self._assignment[database] = replacement
            else:
                owner = False
        if not owner:
            event.wait()
            error = self._recovery_errors.get(address)
            if error is not None:
                raise error
            return
        try:
            if plan_error is not None:
                raise plan_error
            for database, replacement, origin, journal in recovery:
                state = self._state_for(replacement)
                with state.lock:
                    state.client.restore(self.shard, database, origin)
                    for update in journal:
                        state.client.submit_job(self.shard, update)
        except BaseException as error:
            self._recovery_errors[address] = TransportError(
                f"failover from {address} failed: {error}"
            )
            raise
        finally:
            event.set()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "shard": self.shard,
                "addresses": list(self._addresses),
                "standbys": list(self._standbys),
                "failed": sorted(self._failed),
                "assignment": dict(self._assignment),
                "journal_depths": {database: len(journal) for database,
                                   journal in self._journals.items()},
                "journal_cap": self._journal_cap,
                "failovers": self.failovers,
                "handoffs": self.handoffs,
                "truncations": self.truncations,
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pools = list(self._pools.values())
            states = list(self._states.values())
        for pool in pools:
            pool.shutdown(wait=True)
        for state in states:
            with state.lock:
                try:
                    state.client.release([self.shard])
                except Exception:
                    pass  # a dead server has nothing left to release
                state.client.close()

    def __enter__(self) -> "ShardDirectory":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
