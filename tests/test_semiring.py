"""Unit tests for semiring aggregation over join trees."""

import math

from repro.counting.acyclic import bags_for_acyclic_query, count_join_tree
from repro.counting.semiring import (
    BOOLEAN,
    COUNTING,
    MAX_TROPICAL,
    MIN_TROPICAL,
    aggregate_join_tree,
    lightest_solution_weight,
    uniform_weight,
)
from repro.db import Database
from repro.db.algebra import SubstitutionSet
from repro.hypergraph.acyclicity import JoinTree
from repro.query import Variable, parse_query

A, B, C = Variable("A"), Variable("B"), Variable("C")


def _path_bags():
    bags = [
        SubstitutionSet((A, B), [(1, 2), (1, 3), (4, 2)]),
        SubstitutionSet((B, C), [(2, 5), (2, 6), (3, 5)]),
    ]
    tree = JoinTree((frozenset({A, B}), frozenset({B, C})), ((0, 1),))
    return bags, tree


class TestCountingSemiring:
    def test_matches_count_join_tree(self):
        bags, tree = _path_bags()
        assert aggregate_join_tree(bags, tree, COUNTING) == \
            count_join_tree(bags, tree)

    def test_on_real_query(self):
        q = parse_query("ans(A, B, C) :- r(A, B), s(B, C)")
        db = Database.from_dict({
            "r": [(1, 2), (1, 3)],
            "s": [(2, 5), (3, 5), (3, 6)],
        })
        bags, tree = bags_for_acyclic_query(q, db)
        assert aggregate_join_tree(bags, tree, COUNTING) == 3


class TestBooleanSemiring:
    def test_satisfiable(self):
        bags, tree = _path_bags()
        assert aggregate_join_tree(bags, tree, BOOLEAN) is True

    def test_unsatisfiable(self):
        bags = [
            SubstitutionSet((A, B), [(1, 2)]),
            SubstitutionSet((B, C), [(9, 9)]),
        ]
        tree = JoinTree((frozenset({A, B}), frozenset({B, C})), ((0, 1),))
        assert aggregate_join_tree(bags, tree, BOOLEAN) is False


class TestTropicalSemirings:
    def test_min_weight_solution(self):
        bags, tree = _path_bags()
        # weight of a tuple = sum of its values
        weight = lambda schema, row: float(sum(row))
        got = aggregate_join_tree(bags, tree, MIN_TROPICAL, weight)
        # enumerate: solutions (A,B,C): (1,2,5):3+7=10, (1,2,6):3+8=11,
        # (1,3,5):4+8=12, (4,2,5):6+7=13, (4,2,6):6+8=14
        assert got == 10.0

    def test_max_weight_solution(self):
        bags, tree = _path_bags()
        weight = lambda schema, row: float(sum(row))
        assert aggregate_join_tree(bags, tree, MAX_TROPICAL, weight) == 14.0

    def test_empty_join_is_infinite(self):
        bags = [SubstitutionSet.empty((A,))]
        tree = JoinTree((frozenset({A}),), ())
        weight = lambda schema, row: 1.0
        assert lightest_solution_weight(bags, tree, weight) == math.inf


class TestEdgeCases:
    def test_no_bags(self):
        assert aggregate_join_tree([], JoinTree((), ()), COUNTING) == 0

    def test_uniform_weight_is_identity(self):
        assert uniform_weight(COUNTING)((), ()) == 1
        assert uniform_weight(BOOLEAN)((), ()) is True

    def test_forest_multiplies(self):
        bags = [
            SubstitutionSet((A,), [(1,), (2,)]),
            SubstitutionSet((B,), [(3,), (4,), (5,)]),
        ]
        tree = JoinTree((frozenset({A}), frozenset({B})), ())
        assert aggregate_join_tree(bags, tree, COUNTING) == 6
