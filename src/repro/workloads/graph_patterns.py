"""Graph-pattern workloads: pattern queries over an edge relation.

The hardness side of the paper (Section 5) revolves around graph queries —
counting cliques, homomorphisms from grids, and so on — and the tractable
side is best exercised on the classical pattern-counting workloads: stars,
paths, cycles and cliques matched against a single binary ``edge``
relation.  This module provides both halves:

* pattern-query constructors parameterized by size and output arity;
* random-graph generators (Erdős–Rényi and a preferential-attachment
  variant) producing the ``edge`` databases the patterns run on.

Every constructor documents the structural parameters the paper cares
about (hypertree width of the pattern, shape of the frontier hypergraph),
so benchmarks can sweep along the tractability frontier.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..db.database import Database
from ..db.relation import Relation
from ..query.atom import Atom
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable

EDGE = "edge"


def _edge_atom(source: Variable, target: Variable) -> Atom:
    return Atom(EDGE, (source, target))


# ----------------------------------------------------------------------
# Pattern queries
# ----------------------------------------------------------------------
def star_query(leaves: int, free_centre: bool = True) -> ConjunctiveQuery:
    """``ans(C?) :- edge(C, L1), ..., edge(C, Ln)``.

    Acyclic; with a free centre every leaf's frontier is ``{C}``, so the
    #-hypertree width is 1 — a maximally tractable pattern.
    """
    if leaves < 1:
        raise ValueError("a star needs at least one leaf")
    centre = Variable("C")
    leaf_vars = [Variable(f"L{i}") for i in range(1, leaves + 1)]
    atoms = frozenset(_edge_atom(centre, leaf) for leaf in leaf_vars)
    free = frozenset({centre}) if free_centre else frozenset()
    return ConjunctiveQuery(atoms, free, name=f"star{leaves}")


def path_query(length: int, free_endpoints: bool = True) -> ConjunctiveQuery:
    """``ans(X0, Xn) :- edge(X0, X1), ..., edge(Xn-1, Xn)``.

    Acyclic; with free endpoints the inner variables form one
    [free]-component whose frontier is ``{X0, Xn}`` — the "transitively
    connected output pair" situation of the paper's introduction.
    """
    if length < 1:
        raise ValueError("a path needs at least one edge")
    nodes = [Variable(f"X{i}") for i in range(length + 1)]
    atoms = frozenset(
        _edge_atom(nodes[i], nodes[i + 1]) for i in range(length)
    )
    free = frozenset({nodes[0], nodes[-1]}) if free_endpoints else frozenset()
    return ConjunctiveQuery(atoms, free, name=f"path{length}")


def cycle_query(length: int, n_free: int = 0) -> ConjunctiveQuery:
    """``edge(X0, X1), ..., edge(Xn-1, X0)`` with the first *n_free* nodes free.

    Hypertree width 2 for ``length >= 3`` (a cycle is the canonical
    width-2 hypergraph); Example 4.1 is ``cycle_query(4, ...)`` with
    alternating free variables.
    """
    if length < 3:
        raise ValueError("a cycle needs at least three edges")
    if not 0 <= n_free <= length:
        raise ValueError("n_free must be between 0 and the cycle length")
    nodes = [Variable(f"X{i}") for i in range(length)]
    atoms = frozenset(
        _edge_atom(nodes[i], nodes[(i + 1) % length]) for i in range(length)
    )
    free = frozenset(nodes[:n_free])
    return ConjunctiveQuery(atoms, free, name=f"cycle{length}")


def clique_query(size: int, n_free: Optional[int] = None
                 ) -> ConjunctiveQuery:
    """The ``k``-clique pattern: ``edge(Xi, Xj)`` for all ``i < j``.

    The core of the Section 5 hardness reductions: its (generalized)
    hypertree width grows with *size*, so the family has unbounded
    #-hypertree width and counting it is #W[1]-hard.  By default all
    variables are free (counting clique *occurrences*).
    """
    if size < 2:
        raise ValueError("a clique needs at least two nodes")
    nodes = [Variable(f"X{i}") for i in range(size)]
    atoms = frozenset(
        _edge_atom(nodes[i], nodes[j])
        for i in range(size) for j in range(size) if i != j
    )
    free = frozenset(nodes if n_free is None else nodes[:n_free])
    return ConjunctiveQuery(atoms, free, name=f"clique{size}")


def triangle_per_vertex_query() -> ConjunctiveQuery:
    """``ans(A) :- edge(A,B), edge(B,C), edge(C,A)`` — triangles per vertex."""
    a, b, c = Variable("A"), Variable("B"), Variable("C")
    atoms = frozenset({_edge_atom(a, b), _edge_atom(b, c), _edge_atom(c, a)})
    return ConjunctiveQuery(atoms, frozenset({a}), name="triangle_vertex")


# ----------------------------------------------------------------------
# Random graphs
# ----------------------------------------------------------------------
def gnp_graph(n_nodes: int, edge_probability: float,
              directed: bool = True, seed: Optional[int] = None
              ) -> Database:
    """An Erdős–Rényi ``G(n, p)`` edge relation (no self-loops)."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge probability must be in [0, 1]")
    rng = random.Random(seed)
    rows: List[Tuple[int, int]] = []
    for source in range(n_nodes):
        for target in range(n_nodes):
            if source == target:
                continue
            if not directed and source > target:
                continue
            if rng.random() < edge_probability:
                rows.append((source, target))
                if not directed:
                    rows.append((target, source))
    return Database([Relation(EDGE, 2, rows)])


def preferential_attachment_graph(n_nodes: int, edges_per_node: int = 2,
                                  seed: Optional[int] = None) -> Database:
    """A Barabási–Albert-style graph: heavy-tailed degrees.

    Skewed degree distributions are what make the degree-aware algorithms
    of Section 6 interesting: most vertices have tiny degree (quasi-keys),
    a few hubs do not.  Edges are stored symmetrically.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    targets: List[int] = [0, 1]
    rows = {(0, 1), (1, 0)}
    for node in range(2, n_nodes):
        chosen = set()
        for _ in range(min(edges_per_node, node)):
            chosen.add(rng.choice(targets))
        for other in chosen:
            rows.add((node, other))
            rows.add((other, node))
            targets.extend([node, other])
    return Database([Relation(EDGE, 2, sorted(rows))])


def grid_graph(rows: int, columns: int) -> Database:
    """A deterministic grid, edges in reading order (both directions)."""
    if rows < 1 or columns < 1:
        raise ValueError("grid dimensions must be positive")
    edges = set()
    for r in range(rows):
        for c in range(columns):
            node = r * columns + c
            if c + 1 < columns:
                edges.add((node, node + 1))
                edges.add((node + 1, node))
            if r + 1 < rows:
                edges.add((node, node + columns))
                edges.add((node + columns, node))
    return Database([Relation(EDGE, 2, sorted(edges))])


def count_cliques_brute_force(database: Database, size: int) -> int:
    """Reference clique-occurrence count (ordered tuples), for testing."""
    relation = database[EDGE]
    adjacency = {(s, t) for s, t in relation}
    nodes = sorted({n for row in relation for n in row})

    def extend(chosen: List[int]) -> int:
        if len(chosen) == size:
            return 1
        total = 0
        for node in nodes:
            if node in chosen:
                continue
            if all((node, other) in adjacency and (other, node) in adjacency
                   for other in chosen):
                total += extend(chosen + [node])
        return total

    return extend([])
