"""E1/E5 — Figure 1 and Figure 6: frontier machinery on Q0.

Paper claims: removing {A,B,C} from H_Q0 leaves components {I}, {E},
{D,F,G,H} with frontiers {A,B}, {B}, {B,C} (Figure 1(b)); and
Fr(A,{D,E,G}) = {D,E}, Fr(H,{D,E,G}) = {D,G} (Figure 6).
"""

import pytest

from repro.hypergraph.components import components, frontier
from repro.hypergraph.frontier import frontier_hypergraph
from repro.query import Variable
from repro.workloads import q0

A, B, C, D, E, G, H, I = (Variable(x) for x in "ABCDEGHI")


@pytest.mark.benchmark(group="fig01-frontier")
def test_frontier_hypergraph_q0(benchmark):
    query = q0()
    fh = benchmark(frontier_hypergraph, query)
    assert fh.edges == frozenset({
        frozenset({A, B}), frozenset({B}), frozenset({B, C}),
    })


@pytest.mark.benchmark(group="fig01-frontier")
def test_free_components_q0(benchmark):
    hypergraph = q0().hypergraph()
    comps = benchmark(components, hypergraph, frozenset({A, B, C}))
    assert set(comps) == {
        frozenset({I}), frozenset({E}),
        frozenset({D, Variable("F"), G, H}),
    }


@pytest.mark.benchmark(group="fig06-frontier")
def test_figure_6_frontiers(benchmark):
    hypergraph = q0().hypergraph()

    def both():
        return (
            frontier(A, frozenset({D, E, G}), hypergraph),
            frontier(H, frozenset({D, E, G}), hypergraph),
        )

    fr_a, fr_h = benchmark(both)
    assert fr_a == frozenset({D, E})
    assert fr_h == frozenset({D, G})
