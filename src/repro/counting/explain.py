"""EXPLAIN for the counting engine: a readable account of the plan.

``count_answers`` makes several structural decisions — which core it
computed, which decomposition it found, why a strategy was skipped — that
matter when a user asks "why is my query slow?".  :func:`explain` runs the
same decision cascade as the engine *without touching tuple data beyond
what the hybrid probe needs*, and returns an :class:`Explanation` whose
``str()`` is a query-plan-style report:

    strategy          : structural
    #-hypertree width : 2
    colored core      : drops st(D,G), rr(G,H)
    decomposition
      [B,C,D] <- v{pt,wt}
       +- [A,B,I] <- qv_mw
       +- [B,E] <- qv_wi
       +- [D,F,H] <- v{rr,st}

The tree rendering (:func:`render_join_tree`) is reused by the CLI and the
examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..db.database import Database
from ..decomposition.hybrid import (
    HybridDecomposition,
    find_hybrid_decomposition,
    quick_pseudo_free_candidates,
)
from ..decomposition.sharp import (
    SharpDecomposition,
    find_sharp_hypertree_decomposition,
)
from ..exceptions import DecompositionNotFoundError
from ..hypergraph.acyclicity import JoinTree, is_acyclic
from ..hypergraph.frontier import frontier_hypergraph
from ..query.coloring import is_color_atom
from ..query.query import ConjunctiveQuery


def render_join_tree(tree: JoinTree,
                     labels: Optional[List[str]] = None) -> str:
    """ASCII rendering of a join tree (one line per bag, children indented).

    *labels* optionally annotates each bag (e.g. with its witness view).
    """
    lines: List[str] = []
    adjacency = tree.neighbours()
    seen: set = set()

    def bag_text(index: int) -> str:
        names = ",".join(sorted(str(v) for v in tree.bags[index]))
        suffix = f" <- {labels[index]}" if labels else ""
        return f"[{names}]{suffix}"

    def render(index: int, prefix: str, is_last: bool, is_root: bool) -> None:
        seen.add(index)
        if is_root:
            lines.append(bag_text(index))
            child_prefix = ""
        else:
            connector = "`- " if is_last else "+- "
            lines.append(f"{prefix}{connector}{bag_text(index)}")
            child_prefix = prefix + ("   " if is_last else "|  ")
        children = sorted(n for n in adjacency[index] if n not in seen)
        for position, child in enumerate(children):
            render(child, child_prefix, position == len(children) - 1, False)

    for root in range(len(tree.bags)):
        if root not in seen:
            render(root, "", True, True)
    return "\n".join(lines)


@dataclass
class Explanation:
    """The engine's decision trail for one query (and optional database)."""

    query: ConjunctiveQuery
    strategy: str
    notes: List[str] = field(default_factory=list)
    sharp: Optional[SharpDecomposition] = None
    hybrid: Optional[HybridDecomposition] = None
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        lines = [
            f"query             : {self.query}",
            f"strategy          : {self.strategy}",
        ]
        for key, value in self.details.items():
            lines.append(f"{key:<18}: {value}")
        for note in self.notes:
            lines.append(f"  - {note}")
        decomposition = self.sharp or (self.hybrid.sharp if self.hybrid
                                       else None)
        if decomposition is not None:
            lines.append("decomposition")
            rendered = render_join_tree(
                decomposition.tree, list(decomposition.bag_views)
            )
            lines.extend("  " + line for line in rendered.splitlines())
        return "\n".join(lines)


def explain(query: ConjunctiveQuery,
            database: Optional[Database] = None,
            max_width: int = 3,
            hybrid_width: int = 2,
            max_degree: float = math.inf) -> Explanation:
    """Explain which strategy ``count_answers`` would pick and why.

    Mirrors the engine's cascade (acyclic -> structural -> hybrid ->
    degree -> brute force).  The hybrid probe needs a *database* (degrees
    are data facts); without one, the cascade stops after the structural
    stage and reports what remains possible.
    """
    notes: List[str] = []

    if query.is_quantifier_free() and is_acyclic(query.hypergraph()):
        return Explanation(
            query, "acyclic",
            notes=["quantifier-free and alpha-acyclic: join-tree DP applies"],
        )
    if query.is_quantifier_free():
        notes.append("quantifier-free but cyclic: acyclic DP inapplicable")
    else:
        frontier = frontier_hypergraph(query)
        hyperedges = " ".join(
            "{" + ",".join(sorted(str(v) for v in edge)) + "}"
            for edge in sorted(frontier.edges, key=lambda e: sorted(map(str, e)))
        )
        notes.append(f"frontier hypergraph: {hyperedges or '(empty)'}")

    for width in range(1, max_width + 1):
        decomposition = find_sharp_hypertree_decomposition(query, width)
        if decomposition is not None:
            dropped = sorted(
                repr(a) for a in query.atoms - decomposition.core.atoms
            )
            if dropped:
                notes.append(f"colored core drops: {', '.join(dropped)}")
            return Explanation(
                query, "structural", notes=notes, sharp=decomposition,
                details={"#-hypertree width": width},
            )
    notes.append(f"no #-hypertree decomposition of width <= {max_width}")

    if database is not None:
        try:
            hybrid = find_hybrid_decomposition(
                query, database, hybrid_width, max_degree=max_degree,
                candidates=quick_pseudo_free_candidates(query),
            )
        except DecompositionNotFoundError:
            hybrid = None
        if hybrid is not None and hybrid.degree <= max_degree:
            promoted = sorted(
                v.name for v in hybrid.pseudo_free - query.free_variables
            )
            notes.append(f"promoted pseudo-free: {promoted}")
            return Explanation(
                query, "hybrid", notes=notes, hybrid=hybrid,
                details={"width": hybrid_width, "degree bound": hybrid.degree},
            )
        notes.append(
            f"no width-{hybrid_width} hybrid decomposition within "
            f"degree {max_degree}"
        )
    else:
        notes.append("no database given: hybrid/degree stages not probed")

    return Explanation(query, "brute_force", notes=notes)


def core_summary(colored_core: ConjunctiveQuery) -> str:
    """One-line rendering of a colored core without its coloring atoms."""
    plain = sorted(
        repr(a) for a in colored_core.atoms if not is_color_atom(a)
    )
    return " & ".join(plain)
