"""Differential test harness: every strategy agrees on a random corpus.

The trust anchor for the batch service and the shape-keyed plan cache:
on a corpus of random instances, every applicable registered strategy
(brute force, acyclic DP, structural, #-relation/degree, hybrid) and the
FAQ Inside-Out comparator must return the same count — and the batched
service must return exactly the sequential engine's results job-for-job,
in every execution mode.
"""

from __future__ import annotations

import os

import pytest

from repro.counting.brute_force import count_brute_force
from repro.counting.engine import count_answers, registered_strategies
from repro.exceptions import DecompositionNotFoundError, NotAcyclicError
from repro.faq import count_insideout
from repro.service import CountJob, CountingService, PlanCache
from repro.workloads.random_instances import random_instance

#: Worker count for pooled runs; the CI matrix raises it via env.
WORKERS = max(2, int(os.environ.get("REPRO_SERVICE_WORKERS", "2") or 2))

#: Deterministic corpus: alternating cyclic/acyclic random instances.
CORPUS_SEEDS = tuple(range(10))


def _corpus():
    instances = []
    for seed in CORPUS_SEEDS:
        query, database = random_instance(
            n_variables=5, n_atoms=4, domain_size=5,
            tuples_per_relation=14, acyclic=seed % 2 == 1, seed=seed,
        )
        instances.append((seed, query, database))
    return instances


CORPUS = _corpus()


@pytest.mark.parametrize("seed,query,database", CORPUS,
                         ids=[f"seed{s}" for s, _, _ in CORPUS])
def test_every_applicable_strategy_agrees(seed, query, database):
    expected = count_brute_force(query, database)
    ran = []
    for strategy in registered_strategies():
        try:
            result = count_answers(query, database, method=strategy,
                                   max_width=3)
        except (DecompositionNotFoundError, NotAcyclicError):
            continue
        assert result.count == expected, (
            f"seed {seed}: strategy {strategy!r} returned {result.count}, "
            f"brute force says {expected}"
        )
        ran.append(strategy)
    # brute_force is always applicable, so the differential is never vacuous.
    assert "brute_force" in ran


@pytest.mark.parametrize("seed,query,database", CORPUS,
                         ids=[f"seed{s}" for s, _, _ in CORPUS])
def test_faq_insideout_agrees(seed, query, database):
    assert count_insideout(query, database) == \
        count_brute_force(query, database)


@pytest.mark.parametrize("mode", ["inline", "thread", "process"])
def test_batched_service_equals_sequential_job_for_job(mode):
    jobs = [
        CountJob(query=query, database=database,
                 label=f"seed{seed}")
        for seed, query, database in CORPUS
    ]
    sequential = [
        count_answers(job.query, job.database, **job.engine_kwargs())
        for job in jobs
    ]
    with CountingService(
        workers=1 if mode == "inline" else WORKERS,
        mode=mode, plan_cache=PlanCache(),
    ) as service:
        batched = service.run_batch(jobs)
    assert len(batched) == len(jobs)
    for job, sequential_result, batched_result in zip(jobs, sequential,
                                                      batched):
        assert batched_result.count == sequential_result.count, job.label
        assert batched_result.strategy == sequential_result.strategy, \
            job.label
        assert batched_result.details["job"] == job.label


# ----------------------------------------------------------------------
# The compiled tier (ISSUE 6): compiled == interpreted == brute,
# standalone and through sharded sessions in every shard-worker flavor.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed,query,database", CORPUS,
                         ids=[f"seed{s}" for s, _, _ in CORPUS])
def test_compiled_agrees_with_interpreted_and_brute(seed, query, database):
    from repro.counting.compile import set_compiled_enabled
    from repro.counting.plan_cache import PlanCache as _PlanCache

    expected = count_brute_force(query, database)
    set_compiled_enabled(True)
    try:
        compiled = count_answers(query, database, method="compiled",
                                 max_width=3, plan_cache=_PlanCache())
    except DecompositionNotFoundError:
        return  # quantified shape beyond the probe width: nothing to compile
    finally:
        set_compiled_enabled(None)
    assert compiled.strategy == "compiled"
    assert compiled.count == expected, f"seed {seed}"
    set_compiled_enabled(False)
    try:
        interpreted = count_answers(query, database, method="auto",
                                    max_width=3, plan_cache=_PlanCache())
    finally:
        set_compiled_enabled(None)
    assert interpreted.strategy != "compiled"
    assert interpreted.count == expected, f"seed {seed}"


@pytest.mark.parametrize("shard_mode", ["inline", "thread", "process"])
def test_sharded_sessions_agree_compiled_and_uncompiled(shard_mode,
                                                        monkeypatch):
    """The full sharded path — routing, maintenance, engine fallback —
    returns identical counts with the compiled tier on and off."""
    from repro.counting.compile import COMPILED_ENV
    from repro.service import AttachDatabase, CountRequest, \
        MultiWriterSession

    def streams():
        jobs = []
        for seed, query, database in CORPUS[:6]:
            jobs.append(AttachDatabase(f"db{seed}", database))
            jobs.append(CountRequest(query, f"db{seed}",
                                     label=f"seed{seed}"))
        return [jobs]

    def replay():
        with MultiWriterSession(shards=2, shard_mode=shard_mode) as session:
            (results,) = session.run_streams(streams())
        return [r.count for r in results if hasattr(r, "count")]

    monkeypatch.setenv(COMPILED_ENV, "1")
    counts_on = replay()
    # The env var (not the module override) travels into forked
    # process-mode shard workers.
    monkeypatch.setenv(COMPILED_ENV, "0")
    counts_off = replay()
    assert counts_on == counts_off
    assert counts_on == [count_brute_force(query, database)
                         for _, query, database in CORPUS[:6]]
