"""Tests for det-k-decomp hypertree decomposition search (:mod:`repro.decomposition.hd_search`)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.decomposition.hd_search import (
    d_optimal_normal_form,
    find_hypertree_decomposition,
    hypertree_width,
    minimum_weight_hd,
)
from repro.hypergraph.acyclicity import is_acyclic
from repro.query import parse_query
from repro.workloads.paper_queries import q0, q1_cycle
from repro.workloads.random_instances import random_query

TRIANGLE = parse_query("ans(A, B, C) :- r(A, B), s(B, C), t(C, A)")


class TestFindHypertreeDecomposition:
    def test_acyclic_query_width_one(self):
        query = parse_query("ans(A, C) :- r(A, B), s(B, C)")
        hd = find_hypertree_decomposition(query, 1)
        assert hd is not None
        assert hd.width() == 1

    def test_triangle_needs_width_two(self):
        assert find_hypertree_decomposition(TRIANGLE, 1) is None
        hd = find_hypertree_decomposition(TRIANGLE, 2)
        assert hd is not None

    def test_q0_has_width_two(self):
        assert hypertree_width(q0(), max_width=3) == 2

    def test_q1_cycle_width_two(self):
        assert hypertree_width(q1_cycle(), max_width=3) == 2

    def test_decomposition_is_valid(self):
        hd = find_hypertree_decomposition(q0(), 2)
        assert hd is not None
        # Every atom covered by some chi; tree satisfies connectedness.
        for atom in q0().atoms:
            assert any(atom.variable_set <= set(chi) for chi in hd.chis)
        assert hd.join_tree().is_valid()

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=10, deadline=None)
    def test_hw_at_least_ghw_shape(self, seed):
        # hw is within [ghw, 3*ghw + 1]; we check the cheap half: any HD
        # found at width k is also a GHD of width <= k, so acyclicity
        # (ghw = 1) forces hw = 1.
        query = random_query(5, 4, seed=seed)
        if is_acyclic(query.hypergraph()):
            assert hypertree_width(query, max_width=3) == 1


class TestWeightedSearch:
    def test_minimum_weight_prefers_fewer_vertices(self):
        query = parse_query("ans(A, C) :- r(A, B), s(B, C)")
        result = minimum_weight_hd(
            query, 2, lambda chi, lam: 1.0  # cost = vertex count
        )
        assert result is not None
        cost, hd = result
        assert cost == len(hd.chis)

    def test_infeasible_width_returns_none(self):
        assert minimum_weight_hd(
            TRIANGLE, 1, lambda chi, lam: 1.0
        ) is None

    def test_d_optimal_normal_form_on_keys(self):
        # With a keyed relation the D-optimal normal-form HD reaches
        # degree bound 1 (Theorem C.5's polynomial-time guarantee).
        query = parse_query("ans(A) :- r(A, B), s(B, C)")
        database = Database.from_dict({
            "r": [(1, 10), (2, 20)],        # A is a key
            "s": [(10, 5), (20, 5)],        # B is a key
        })
        result = d_optimal_normal_form(query, database, 2)
        assert result is not None
        bound, _hd = result
        assert bound == 1
