"""Incremental maintenance of answer counts ([BKS17]-style).

:class:`IncrementalCounter` materializes the join-tree counting dynamic
program of an acyclic quantifier-free query and keeps it consistent under
single-tuple updates:

* per vertex: the matched rows of each of its atoms, the bag relation
  (their intersection-join), and the DP count of every bag row;
* per tree edge: the aggregated child counts keyed by the shared
  variables.

One update touches the atoms over the updated relation; the affected
vertices recompute their local state and the change propagates along the
paths to the roots — every vertex off those paths is untouched.  The
per-update cost is ``O(depth x bag size)`` instead of the full recount's
``O(total database size)``, which is the practical content of the
dynamic-counting results the paper cites.

Scope: quantifier-free acyclic queries, each bag covering atoms with the
same variable set (exactly the instances
:func:`repro.counting.acyclic.count_acyclic` accepts).  For queries with
existential variables, reduce via Theorem 3.7 first or fall back to a
recount — the [BKS17] dichotomy says no better is possible in general.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..db.database import Database
from ..exceptions import NotAcyclicError
from ..hypergraph.acyclicity import require_join_tree
from ..query.atom import Atom
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable
from .updates import Delete, Insert, Update

Row = Tuple[Hashable, ...]


def _atom_match(atom: Atom, row: Row) -> Optional[Row]:
    """The bag row this relation *row* contributes through *atom*.

    ``None`` if the row fails the atom's constant / repeated-variable
    pattern.  The returned row follows the atom's sorted variable schema.
    """
    binding: Dict[Variable, Hashable] = {}
    for term, value in zip(atom.terms, row):
        if isinstance(term, Variable):
            if term in binding:
                if binding[term] != value:
                    return None
            else:
                binding[term] = value
        elif term.value != value:
            return None
    schema = sorted(binding, key=lambda v: v.name)
    return tuple(binding[v] for v in schema)


class _Vertex:
    """Mutable per-vertex state of the materialized DP."""

    __slots__ = ("index", "schema", "atoms", "atom_rows", "parent",
                 "children", "counts", "shared_with_parent",
                 "child_positions", "agg_cache")

    def __init__(self, index: int, schema: Tuple[Variable, ...],
                 atoms: List[Atom]):
        self.index = index
        self.schema = schema
        self.atoms = atoms
        #: Multiset of bag rows contributed per atom (an atom over a
        #: relation with duplicates patterns may map several relation rows
        #: to one bag row).
        self.atom_rows: List[Dict[Row, int]] = [dict() for _ in atoms]
        self.parent: Optional[int] = None
        self.children: List[int] = []
        self.counts: Dict[Row, int] = {}
        self.shared_with_parent: Tuple[int, ...] = ()
        #: Per child: the positions (in *this* schema) of the shared
        #: variables — static once the tree is wired.
        self.child_positions: Dict[int, Tuple[int, ...]] = {}
        #: Per child: its aggregated counts keyed by shared-variable
        #: values.  Cached so that repairing one subtree only rebuilds
        #: the aggregates of the children that actually changed.
        self.agg_cache: Dict[int, Dict[Row, int]] = {}

    def bag_rows(self) -> Set[Row]:
        """Rows present in *every* atom's match set (the bag relation)."""
        if not self.atom_rows:
            return set()
        smallest = min(self.atom_rows, key=len)
        return {
            row for row in smallest
            if all(row in other for other in self.atom_rows)
        }


class IncrementalCounter:
    """Maintain ``count(Q, D)`` under single-tuple updates.

    >>> counter = IncrementalCounter(query, database)
    >>> counter.count
    42
    >>> counter.apply(Insert("r", (1, 2)))
    >>> counter.count   # updated incrementally
    45
    """

    def __init__(self, query: ConjunctiveQuery, database: Database):
        if not query.is_quantifier_free():
            raise NotAcyclicError(
                "IncrementalCounter requires a quantifier-free query; "
                "reduce via the Theorem 3.7 pipeline first"
            )
        self.query = query
        tree = require_join_tree(query.hypergraph())
        self._vertices: List[_Vertex] = []
        self._atoms_by_relation: Dict[str, List[Tuple[int, int]]] = {}
        grouped: Dict[frozenset, List[Atom]] = {}
        for atom in query.atoms_sorted():
            grouped.setdefault(atom.variable_set, []).append(atom)
        for index, bag in enumerate(tree.bags):
            schema = tuple(sorted(bag, key=lambda v: v.name))
            atoms = grouped.get(bag)
            if atoms is None:
                raise NotAcyclicError(
                    f"{query.name}: join-tree bag "
                    f"{sorted(v.name for v in bag)} matches no atom's "
                    f"variable set; the DP cannot be materialized per atom"
                )
            vertex = _Vertex(index, schema, atoms)
            self._vertices.append(vertex)
            for atom_index, atom in enumerate(vertex.atoms):
                self._atoms_by_relation.setdefault(
                    atom.relation, []
                ).append((index, atom_index))
        self._wire_tree(tree)
        self._load(database)
        self._recompute_all()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _wire_tree(self, tree) -> None:
        self._order = tree.rooted_orders()  # post-order, children first
        self._roots: List[int] = []
        for vertex_index, parent, children in self._order:
            vertex = self._vertices[vertex_index]
            vertex.parent = parent
            vertex.children = list(children)
            if parent is None:
                self._roots.append(vertex_index)
            else:
                parent_schema = set(self._vertices[parent].schema)
                shared = tuple(
                    i for i, v in enumerate(vertex.schema)
                    if v in parent_schema
                )
                vertex.shared_with_parent = shared
        # With parents wired, pin each child's shared variables to their
        # positions in the parent's schema (static for the tree's life).
        for vertex in self._vertices:
            for child_index in vertex.children:
                child = self._vertices[child_index]
                shared_vars = tuple(
                    child.schema[i] for i in child.shared_with_parent
                )
                vertex.child_positions[child_index] = tuple(
                    vertex.schema.index(v) for v in shared_vars
                )

    def _load(self, database: Database) -> None:
        for vertex in self._vertices:
            for atom_index, atom in enumerate(vertex.atoms):
                matches = vertex.atom_rows[atom_index]
                for db_row in database[atom.relation]:
                    bag_row = _atom_match(atom, db_row)
                    if bag_row is not None:
                        matches[bag_row] = matches.get(bag_row, 0) + 1

    # ------------------------------------------------------------------
    # The DP
    # ------------------------------------------------------------------
    def _child_aggregate(self, child: _Vertex) -> Dict[Row, int]:
        """Child counts summed over the variables shared with the parent."""
        aggregate: Dict[Row, int] = {}
        positions = child.shared_with_parent
        for row, count in child.counts.items():
            key = tuple(row[i] for i in positions)
            aggregate[key] = aggregate.get(key, 0) + count
        return aggregate

    def _recompute_vertex(self, index: int) -> None:
        """Rebuild *index*'s counts and child aggregates from scratch.

        Used for the initial load only; updates go through the row-wise
        delta repair in :meth:`apply_batch`, which patches the cached
        aggregates in place instead of rebuilding them.
        """
        vertex = self._vertices[index]
        for child_index in vertex.children:
            vertex.agg_cache[child_index] = self._child_aggregate(
                self._vertices[child_index]
            )
        aggregates = [
            (vertex.child_positions[child_index],
             vertex.agg_cache[child_index])
            for child_index in vertex.children
        ]
        vertex.counts = {}
        for row in vertex.bag_rows():
            total = 1
            for positions, aggregate in aggregates:
                key = tuple(row[i] for i in positions)
                total *= aggregate.get(key, 0)
                if total == 0:
                    break
            if total:
                vertex.counts[row] = total

    def _recompute_all(self) -> None:
        for vertex_index, _parent, _children in self._order:
            self._recompute_vertex(vertex_index)

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """The current answer count."""
        total = 1
        for root in self._roots:
            total *= sum(self._vertices[root].counts.values())
        return total

    def _ingest(self, update: Update) -> List[Tuple[int, Row]]:
        """Fold one update into the atom match sets; return the
        ``(vertex, bag row)`` pairs whose DP value may have changed."""
        touched = self._atoms_by_relation.get(update.relation, ())
        dirty: List[Tuple[int, Row]] = []
        for vertex_index, atom_index in touched:
            vertex = self._vertices[vertex_index]
            atom = vertex.atoms[atom_index]
            bag_row = _atom_match(atom, update.row)
            if bag_row is None:
                continue
            matches = vertex.atom_rows[atom_index]
            if isinstance(update, Insert):
                matches[bag_row] = matches.get(bag_row, 0) + 1
            else:
                remaining = matches.get(bag_row, 0) - 1
                if remaining > 0:
                    matches[bag_row] = remaining
                else:
                    matches.pop(bag_row, None)
            dirty.append((vertex_index, bag_row))
        return dirty

    def _row_count(self, vertex: _Vertex, row: Row) -> int:
        """The DP value of one bag *row*, from the cached aggregates."""
        for matches in vertex.atom_rows:
            if row not in matches:
                return 0
        total = 1
        for child_index in vertex.children:
            key = tuple(
                row[i] for i in vertex.child_positions[child_index]
            )
            total *= vertex.agg_cache[child_index].get(key, 0)
            if total == 0:
                return 0
        return total

    def apply(self, update: Update) -> None:
        """Apply one insert/delete and repair the DP along affected paths."""
        self.apply_batch((update,))

    def apply_batch(self, updates: Sequence[Update]) -> None:
        """Apply a *batch* of updates with a single delta-propagation pass.

        Every update's match-set change is folded in first; the DP is
        then repaired **row-wise** in post-order: each affected vertex
        re-evaluates exactly its changed bag rows against the cached
        child aggregates, the resulting count deltas patch the parent's
        cached aggregate in place, and only parent rows whose
        shared-variable key actually moved are re-evaluated in turn.
        Vertices off the affected paths — and the untouched rows *on*
        them — are never visited, so a single-tuple update costs the
        affected root-to-leaf paths plus one candidate scan per affected
        parent, not a rebuild of every bag.  The repair is a pure
        function of the match sets, so a batch lands in exactly the
        state sequential application would.
        """
        changed: Dict[int, Set[Row]] = {}
        for update in updates:
            for vertex_index, bag_row in self._ingest(update):
                changed.setdefault(vertex_index, set()).add(bag_row)
        if not changed:
            return
        for vertex_index, parent, _children in self._order:
            rows = changed.get(vertex_index)
            if not rows:
                continue
            vertex = self._vertices[vertex_index]
            deltas: Dict[Row, int] = {}
            for row in rows:
                new = self._row_count(vertex, row)
                old = vertex.counts.get(row, 0)
                if new == old:
                    continue
                if new:
                    vertex.counts[row] = new
                else:
                    del vertex.counts[row]
                if parent is not None:
                    key = tuple(
                        row[i] for i in vertex.shared_with_parent
                    )
                    deltas[key] = deltas.get(key, 0) + (new - old)
            if parent is None or not deltas:
                continue
            parent_vertex = self._vertices[parent]
            aggregate = parent_vertex.agg_cache[vertex_index]
            moved = set()
            for key, delta in deltas.items():
                if delta == 0:
                    continue
                value = aggregate.get(key, 0) + delta
                if value:
                    aggregate[key] = value
                else:
                    del aggregate[key]
                moved.add(key)
            if not moved:
                continue
            positions = parent_vertex.child_positions[vertex_index]
            parent_changed = changed.setdefault(parent, set())
            # Candidate parent rows live in its smallest atom match set
            # (bag membership requires presence in every one of them).
            candidates = (min(parent_vertex.atom_rows, key=len)
                          if parent_vertex.atom_rows else ())
            for row in candidates:
                if tuple(row[i] for i in positions) in moved:
                    parent_changed.add(row)

    def apply_many(self, updates: Sequence[Update]) -> None:
        """Apply a sequence of updates (alias of :meth:`apply_batch`)."""
        self.apply_batch(tuple(updates))


# ----------------------------------------------------------------------
# Multi-query sharing: one materialized DP per decomposition tree
# ----------------------------------------------------------------------
class SharedMaintainer:
    """One :class:`IncrementalCounter` serving every same-shape query.

    The counter runs in *canonical space*: it is built over the
    shape-canonical query and the database's canonically-renamed
    restriction, so any query that is a bijective variable renaming of
    another (same decomposition tree, same symbol mapping onto the
    database) reads its count from the same maintained DP.  ``clients``
    records the distinct query objects served; ``served`` counts reads.
    """

    __slots__ = ("counter", "symbol_map", "clients", "served")

    def __init__(self, counter: IncrementalCounter,
                 symbol_map: Dict[str, str]):
        self.counter = counter
        #: original relation symbol -> canonical symbol of the DP's query.
        self.symbol_map = symbol_map
        self.clients: Set[ConjunctiveQuery] = set()
        self.served = 0

    @property
    def count(self) -> int:
        return self.counter.count

    def translate(self, update: Update) -> Optional[Update]:
        """*update* renamed into canonical space; ``None`` when the
        updated relation does not occur in the maintained query (the
        count cannot change, so the DP is left untouched)."""
        target = self.symbol_map.get(update.relation)
        if target is None:
            return None
        if isinstance(update, Insert):
            return Insert(target, update.row)
        return Delete(target, update.row)


class MaintainerPool:
    """A bounded pool of :class:`SharedMaintainer`\\ s, keyed by
    ``(database token, shape fingerprint, symbol renaming)``.

    The *token* names a database version lineage (the streaming session
    uses its database names); the fingerprint plus the symbol renaming
    pin one decomposition tree in canonical space.  All queries landing
    on the same key share one DP — the "many jobs, few shapes" traffic
    the batch service targets, carried over to maintained counts.

    Not thread-safe by design: the session applies updates and reads
    maintained counts from its submission thread only (engine fallbacks
    are what fan out to worker pools).
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, SharedMaintainer]" = OrderedDict()
        self.built = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def counter_for(self, token: Hashable, query: ConjunctiveQuery,
                    database: Database, form) -> SharedMaintainer:
        """The shared maintainer for *query* over *database*.

        *form* is the query's :class:`~repro.query.canonical.CanonicalForm`
        (the session passes the plan cache's memoized form).  Builds the
        DP on first use — raising :class:`NotAcyclicError` when the shape
        is not maintainable, which callers should memoize per fingerprint
        — and LRU-evicts beyond ``capacity``.
        """
        key = (token, form.fingerprint,
               tuple(sorted(form.symbol_map.items())))
        entry = self._entries.get(key)
        if entry is None:
            canonical_database = database.renamed_restriction(form.symbol_map)
            counter = IncrementalCounter(form.query, canonical_database)
            entry = SharedMaintainer(counter, dict(form.symbol_map))
            self._entries[key] = entry
            self.built += 1
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evicted += 1
        else:
            self._entries.move_to_end(key)
        entry.clients.add(query)
        return entry

    def apply(self, token: Hashable,
              updates: Sequence[Update]) -> int:
        """Batch-apply *updates* to every maintainer of *token*'s
        database; returns how many maintainers were touched."""
        touched = 0
        for key, entry in self._entries.items():
            if key[0] != token:
                continue
            translated = [
                renamed for renamed in map(entry.translate, updates)
                if renamed is not None
            ]
            if translated:
                entry.counter.apply_batch(translated)
                touched += 1
        return touched

    def discard(self, token: Hashable) -> int:
        """Drop every maintainer of *token*'s database (e.g. when the
        named database is re-attached wholesale)."""
        doomed = [key for key in self._entries if key[0] == token]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def stats(self) -> Dict[str, int]:
        clients = sum(len(e.clients) for e in self._entries.values())
        return {
            "maintainers": len(self._entries),
            "built": self.built,
            "evicted": self.evicted,
            "clients": clients,
            "reads_served": sum(e.served for e in self._entries.values()),
        }
