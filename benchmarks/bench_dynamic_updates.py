"""E20 — Counting under updates: incremental maintenance vs recount.

Paper context (Section 1.3, [BKS17, BKS18]): for suitable acyclic queries
the answer count can be maintained under single-tuple updates much faster
than recounting.

Measured here: (a) the maintainer agrees with the recount across an update
stream; (b) per-update cost of the maintainer vs a from-scratch recount as
the database grows — the gap is the point of the dynamic algorithm.
"""

import random

import pytest

from repro.counting.acyclic import count_acyclic
from repro.db import Database
from repro.dynamic import Delete, IncrementalCounter, Insert, apply_update
from repro.query import parse_query

from conftest import report

QUERY = parse_query("ans(A, B, C, D) :- r(A, B), s(B, C), t(C, D)")


def make_database(n_tuples: int, seed: int = 0) -> Database:
    rng = random.Random(seed)
    domain = max(4, n_tuples // 4)

    def rows():
        return list({
            (rng.randrange(domain), rng.randrange(domain))
            for _ in range(n_tuples)
        })

    return Database.from_dict({"r": rows(), "s": rows(), "t": rows()})


def make_stream(database: Database, length: int, seed: int = 1):
    rng = random.Random(seed)
    stream = []
    current = database
    for _ in range(length):
        relation = rng.choice(["r", "s", "t"])
        existing = sorted(set(current[relation].rows), key=repr)
        if existing and rng.random() < 0.5:
            update = Delete(relation, rng.choice(existing))
        else:
            domain = 10_000
            while True:
                row = (rng.randrange(domain), rng.randrange(domain))
                if row not in set(current[relation].rows):
                    break
            update = Insert(relation, row)
        stream.append(update)
        current = apply_update(current, update)
    return stream


@pytest.mark.benchmark(group="dynamic-updates")
@pytest.mark.parametrize("n_tuples", [100, 400, 1600])
def test_incremental_update_cost(benchmark, n_tuples):
    database = make_database(n_tuples)
    stream = make_stream(database, 20)

    def replay():
        counter = IncrementalCounter(QUERY, database)
        counter.apply_many(stream)
        return counter.count

    count = benchmark(replay)
    final = database
    for update in stream:
        final = apply_update(final, update)
    assert count == count_acyclic(QUERY, final)
    report("incremental", tuples=n_tuples, stream=len(stream), count=count)


@pytest.mark.benchmark(group="dynamic-updates")
@pytest.mark.parametrize("n_tuples", [100, 400, 1600])
def test_recount_update_cost(benchmark, n_tuples):
    database = make_database(n_tuples)
    stream = make_stream(database, 20)

    def replay():
        current = database
        count = count_acyclic(QUERY, current)
        for update in stream:
            current = apply_update(current, update)
            count = count_acyclic(QUERY, current)
        return count

    count = benchmark(replay)
    final = database
    for update in stream:
        final = apply_update(final, update)
    assert count == count_acyclic(QUERY, final)
    report("recount", tuples=n_tuples, stream=len(stream), count=count)
