"""The Inside-Out algorithm [KNR16] specialized to answer counting.

#CQ as a functional aggregate query::

    count(Q, D) = SUM_{x in free(Q)} OR_{y in exists(Q)} PROD_{a in atoms(Q)} 1[a]

Inside-Out evaluates the expression by eliminating variables
innermost-first.  Eliminating a variable ``v``:

1. collect every factor whose schema contains ``v``;
2. multiply them into one factor (semiring join);
3. aggregate ``v`` out — ``OR`` while in the existential block, ``SUM``
   afterwards — and put the result back in the factor pool.

The two blocks use different semirings, so between them the pool is
*reinterpreted*: the Boolean factors that survive the existential block
keep only their support and every supported row gets count 1.  The final
pool is a single scalar factor holding the answer count.

Cost is ``O(n^w)`` for database size ``n`` and induced width ``w`` of the
order — polynomial in the data for any fixed order, superpolynomial in the
query in general, exactly the trade-off the paper contrasts with
#-hypertree decompositions (Section 1.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..counting.semiring import BOOLEAN, COUNTING, Semiring
from ..db.algebra import SubstitutionSet
from ..db.database import Database
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable
from .factor import Factor, multiply_all
from .ordering import best_elimination_order, require_valid_order


@dataclass
class InsideOutReport:
    """Diagnostics of one Inside-Out run."""

    count: int
    order: List[str]
    induced_width: int = 0
    max_intermediate_support: int = 0
    eliminations: List[Dict[str, object]] = field(default_factory=list)


def _atom_factors(query: ConjunctiveQuery, database: Database,
                  semiring: Semiring) -> List[Factor]:
    """One indicator factor per atom, matched against the database."""
    return [
        Factor.indicator(
            SubstitutionSet.from_atom(atom, database[atom.relation]),
            semiring,
        )
        for atom in query.atoms_sorted()
    ]


def _eliminate(pool: List[Factor], variable: Variable,
               semiring: Semiring) -> Factor:
    """One elimination step; returns the new factor for diagnostics."""
    touching = [f for f in pool if variable in f.variable_set()]
    pool[:] = [f for f in pool if variable not in f.variable_set()]
    product = multiply_all(touching, semiring)
    eliminated = product.marginalize(variable).dropped_zeroes()
    pool.append(eliminated)
    return eliminated


def count_insideout(query: ConjunctiveQuery, database: Database,
                    order: Optional[Sequence[Variable]] = None) -> int:
    """Count answers of *query* on *database* by Inside-Out."""
    return insideout_report(query, database, order).count


def insideout_report(query: ConjunctiveQuery, database: Database,
                     order: Optional[Sequence[Variable]] = None
                     ) -> InsideOutReport:
    """Run Inside-Out and return the count with elimination diagnostics."""
    if order is None:
        order = best_elimination_order(query)
    order = require_valid_order(query, order)
    existential = query.existential_variables

    # Existential block: Boolean semiring (witness existence).
    pool = _atom_factors(query, database, BOOLEAN)
    report = InsideOutReport(count=0, order=[v.name for v in order])
    position = 0
    while position < len(order) and order[position] in existential:
        variable = order[position]
        eliminated = _eliminate(pool, variable, BOOLEAN)
        report.eliminations.append({
            "variable": variable.name,
            "aggregate": "or",
            "schema": sorted(v.name for v in eliminated.schema),
            "support": len(eliminated),
        })
        report.max_intermediate_support = max(
            report.max_intermediate_support, len(eliminated)
        )
        position += 1

    # Block switch: keep supports, re-annotate with count 1.
    pool = [factor.reinterpret(COUNTING) for factor in pool]

    # Free block: counting semiring (sum over output assignments).
    for variable in order[position:]:
        eliminated = _eliminate(pool, variable, COUNTING)
        report.eliminations.append({
            "variable": variable.name,
            "aggregate": "sum",
            "schema": sorted(v.name for v in eliminated.schema),
            "support": len(eliminated),
        })
        report.max_intermediate_support = max(
            report.max_intermediate_support, len(eliminated)
        )

    final = multiply_all(pool, COUNTING)
    report.count = int(final.scalar_value())
    report.induced_width = max(
        (
            len(step["schema"]) + 1  # +1: the eliminated variable itself
            for step in report.eliminations
        ),
        default=0,
    )
    return report


def evaluate_faq(query: ConjunctiveQuery, database: Database,
                 semiring: Semiring,
                 weight=None,
                 order: Optional[Sequence[Variable]] = None):
    """General FAQ evaluation: one semiring for every variable.

    Computes ``plus`` over *all* variable assignments of the ``times`` of
    per-atom weights (default: the multiplicative identity).  With the
    counting semiring this counts homomorphisms (all variables output);
    with ``MIN_TROPICAL`` and a real-valued *weight* it finds the lightest
    solution, etc.  Note this ignores the free/existential split — the
    mixed-aggregate #CQ semantics lives in :func:`count_insideout`.

    ``weight(atom, row)`` maps a matched atom row (a substitution dict) to
    a semiring value.
    """
    if order is None:
        full = query.with_free(query.variables)
        order = best_elimination_order(full)
    pool: List[Factor] = []
    for atom in query.atoms_sorted():
        matched = SubstitutionSet.from_atom(atom, database[atom.relation])
        if weight is None:
            pool.append(Factor.indicator(matched, semiring))
        else:
            values = {}
            for row in matched.rows:
                binding = dict(zip(matched.schema, row))
                values[row] = weight(atom, binding)
            pool.append(Factor(matched.schema, values, semiring,
                               _presorted=True))
    for variable in order:
        _eliminate(pool, variable, semiring)
    return multiply_all(pool, semiring).scalar_value()
