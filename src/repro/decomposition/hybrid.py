"""Hybrid #b-(generalized) hypertree decompositions (Section 6).

A width-``k`` #b-generalized hypertree decomposition of ``Q`` w.r.t. ``D``
(Definition 6.4) is a pair ``(HD, S)`` where ``S`` is a set of *pseudo-free*
variables containing ``free(Q)`` such that:

1. ``HD`` is a width-``k`` #-generalized hypertree decomposition of
   ``Q[S]`` (the query re-quantified so that ``S`` is its output), and
2. the degree of the *actual* free variables in the ``chi ∩ S``-restricted
   vertex relations is at most ``b``.

Promoting low-degree existential variables (keys, quasi-keys) to pseudo-free
status can dissolve frontier cliques that block purely structural methods —
Example 6.3 is the canonical witness, reproduced in the benchmarks.

:func:`find_hybrid_decomposition` implements the FPT search of Theorem 6.7:
it enumerates candidate pseudo-free sets and, for each, runs a
min-bottleneck tree-projection search whose bag cost is the achievable
degree, returning the decomposition with the least degree bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Tuple

from ..consistency.views import hypertree_view_set
from ..db.database import Database
from ..exceptions import DecompositionNotFoundError
from ..homomorphism.core import core_pair
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable
from .degree import _BagDegreeCost
from .ghd import union_view_hypergraph
from .sharp import SharpDecomposition, sharp_cover_hypergraph, _witness_view
from .tree_projection import candidate_bags, find_min_cost_tree_projection

#: Refuse exhaustive pseudo-free enumeration beyond this many existential
#: variables (2^n subsets); callers must then pass explicit candidates.
MAX_ENUMERATED_EXISTENTIALS = 14


@dataclass(frozen=True)
class HybridDecomposition:
    """A #b-generalized hypertree decomposition ``(HD, S)``."""

    query: ConjunctiveQuery
    pseudo_free: FrozenSet[Variable]
    sharp: SharpDecomposition
    degree: int

    def width(self) -> int:
        """The width of the underlying #-decomposition."""
        return self.sharp.width()


def evaluate_pseudo_free(query: ConjunctiveQuery, database: Database,
                         width: int, pseudo_free: Iterable[Variable],
                         max_degree: float = math.inf
                         ) -> Optional[HybridDecomposition]:
    """Best (least-degree) #b-decomposition for one pseudo-free set ``S``.

    Returns ``None`` if ``Q[S]`` has no width-*width* #-hypertree
    decomposition whose restricted degree stays within *max_degree*.
    """
    pseudo_free = frozenset(pseudo_free)
    if not query.free_variables <= pseudo_free:
        raise ValueError("pseudo-free set must contain the free variables")
    requantified = query.with_free(pseudo_free, name=f"{query.name}[S]")
    colored, core = core_pair(requantified)
    to_cover = sharp_cover_hypergraph(requantified, colored)
    views_hg = union_view_hypergraph(query.hypergraph(), width)
    bags = candidate_bags(views_hg, to_cover.nodes)
    cost = _BagDegreeCost(
        query, database, width,
        free=query.free_variables, restrict_to=pseudo_free,
    )
    result = find_min_cost_tree_projection(to_cover, bags, cost,
                                           cost_budget=max_degree)
    if result is None:
        return None
    bottleneck, tree = result
    views = hypertree_view_set(query, width)
    sharp = SharpDecomposition(
        query=requantified,
        colored_core=colored,
        core=core,
        tree=tree,
        views=views,
        bag_views=tuple(_witness_view(views, bag) for bag in tree.bags),
    )
    return HybridDecomposition(
        query=query,
        pseudo_free=pseudo_free,
        sharp=sharp,
        degree=max(int(bottleneck), 1),
    )


def quick_pseudo_free_candidates(query: ConjunctiveQuery
                                 ) -> List[FrozenSet[Variable]]:
    """A linear-size candidate list for time-budgeted hybrid searches.

    The exhaustive Theorem 6.7 search enumerates all ``2^n`` supersets of
    the free variables; the counting *engine* only needs some decomposition
    within its degree budget, so it probes: the free set itself, each
    single promotion, the full promotion, and each full-minus-one
    promotion.  Optimality is not guaranteed — use
    :func:`find_hybrid_decomposition` without *candidates* for the paper's
    exact minimum.
    """
    free = query.free_variables
    existential = sorted(query.existential_variables, key=lambda v: v.name)
    candidates: List[FrozenSet[Variable]] = [free]
    candidates.extend(free | {v} for v in existential)
    if len(existential) > 1:
        full = free | frozenset(existential)
        candidates.extend(full - {v} for v in existential)
        candidates.append(full)
    elif existential:
        candidates.append(free | frozenset(existential))
    seen: set = set()
    unique = []
    for candidate in candidates:
        if candidate not in seen:
            seen.add(candidate)
            unique.append(candidate)
    return unique


def find_hybrid_decomposition(query: ConjunctiveQuery, database: Database,
                              width: int,
                              candidates: Optional[Iterable[FrozenSet[Variable]]] = None,
                              max_degree: float = math.inf
                              ) -> Optional[HybridDecomposition]:
    """The FPT search of Theorem 6.7: a width-*width* #b-GHD of *query*
    w.r.t. *database* with the minimum achievable degree value ``b``.

    *candidates* optionally restricts the pseudo-free sets to probe; by
    default every superset of ``free(Q)`` is enumerated (FPT in the query
    size), smallest first so that ties in the degree prefer fewer promoted
    variables.
    """
    if candidates is None:
        existential = sorted(query.existential_variables, key=lambda v: v.name)
        if len(existential) > MAX_ENUMERATED_EXISTENTIALS:
            raise DecompositionNotFoundError(
                f"{len(existential)} existential variables exceed the "
                "exhaustive enumeration limit; pass explicit candidates"
            )
        candidates = (
            query.free_variables | frozenset(extra)
            for size in range(len(existential) + 1)
            for extra in combinations(existential, size)
        )
    best: Optional[HybridDecomposition] = None
    budget = max_degree
    for pseudo_free in candidates:
        found = evaluate_pseudo_free(query, database, width, pseudo_free,
                                     max_degree=budget)
        if found is None:
            continue
        if best is None or found.degree < best.degree:
            best = found
            budget = min(budget, best.degree)  # bound later probes
            if best.degree <= 1:
                break  # cannot improve on degree 1
    return best
