"""Local-consistency decision procedures (Lemma 4.3; [GS17b]).

For queries whose cores have generalized hypertree width at most ``k``,
non-emptiness of the answer set can be decided by enforcing pairwise
consistency over the standard extension of the database to the view set
``V^k_Q`` and checking that no view became empty.  This is the engine behind
the polynomial-time core computation of Lemma 4.3 and, via Theorem 1.3, the
promise-free part of the tractability result.

:class:`CompiledReducer` is the compiled-tier counterpart of
:func:`~repro.consistency.pairwise.full_reducer`: for a *fixed* join tree
over *fixed* bag schemas it resolves every semijoin's key extractors and
probe order once, at construction, and then reduces plain row sets with no
per-pass schema work — the shape the compiled counting programs and the
reduced maintainer's refresh pass execute on every read.
"""

from __future__ import annotations

from operator import itemgetter
from typing import FrozenSet, List, Sequence, Set, Tuple

from ..db.algebra import _row_getter
from ..db.database import Database
from ..hypergraph.acyclicity import JoinTree
from ..query.query import ConjunctiveQuery
from ..query.terms import Variable
from .delta import DeltaReducer
from .pairwise import pairwise_consistency
from .views import hypertree_view_set, standard_view_extension


#: Scalar probe-key extractors shared across reducer instances.  Probe
#: keys never leave :meth:`CompiledReducer.reduce`, so a single position
#: can yield the bare value (C-speed ``itemgetter``, scalar hashing);
#: memoizing keeps getter *identity* stable, which the per-call key-set
#: cache keys on.  Kept separate from ``algebra._GETTER_MEMO`` — that
#: one maps the same positions to tuple-producing extractors.
_KEY_MEMO: dict = {}


def _key_getter(positions: Tuple[int, ...]):
    getter = _KEY_MEMO.get(positions)
    if getter is None:
        if len(positions) == 1:
            getter = itemgetter(positions[0])
        else:
            getter = _row_getter(positions)
        _KEY_MEMO[positions] = getter
    return getter


class CompiledReducer:
    """A two-pass full reducer compiled for one join tree + schema family.

    The interpreted :func:`~repro.consistency.pairwise.full_reducer`
    re-derives, on every call, which variables each tree edge shares and
    which positions extract them — per bag, per pass.  For a fixed tree
    the schedule is static: this class precomputes, per edge and
    direction, the key extractor on each side, and :meth:`reduce` then
    runs the classical bottom-up/top-down semijoin program over plain
    ``set``/``frozenset`` row collections (no
    :class:`~repro.db.algebra.SubstitutionSet` construction, no schema
    lookups).  Semantics match ``full_reducer`` exactly, including empty
    propagation across disconnected components.

    The extractors are closures, so instances must not be pickled;
    holders either rebuild them on restore (see
    :class:`~repro.dynamic.reduced.ReducedMaintainer`) or persist the
    position-based :meth:`steps` data and relink with
    :meth:`from_steps` (the compiled counting programs do).
    """

    __slots__ = ("_up_steps", "_down_steps", "_up_data", "_down_data",
                 "_size")

    def __init__(self, schemas: Sequence[Tuple[Variable, ...]],
                 tree: JoinTree):
        if len(schemas) != len(tree.bags):
            raise ValueError("schema count does not match join tree size")
        order = tree.rooted_orders()
        indexes = [
            {v: i for i, v in enumerate(schema)} for schema in schemas
        ]
        # Bottom-up: (vertex, ((vertex key pos., child, child key pos.), ...))
        up = []
        for vertex, _parent, children in order:
            probes = []
            mine = set(schemas[vertex])
            for child in children:
                shared = tuple(sorted(
                    mine & set(schemas[child]), key=lambda v: v.name
                ))
                probes.append((
                    tuple(indexes[vertex][v] for v in shared),
                    child,
                    tuple(indexes[child][v] for v in shared),
                ))
            if probes:
                up.append((vertex, tuple(probes)))
        # Top-down: (child, child key pos., parent, parent key pos.).
        down = []
        for vertex, parent, _children in reversed(order):
            if parent is None:
                continue
            shared = tuple(sorted(
                set(schemas[vertex]) & set(schemas[parent]),
                key=lambda v: v.name,
            ))
            down.append((
                vertex,
                tuple(indexes[vertex][v] for v in shared),
                parent,
                tuple(indexes[parent][v] for v in shared),
            ))
        self._link(len(tree.bags), tuple(up), tuple(down))

    def _link(self, size: int, up: tuple, down: tuple) -> None:
        self._size = size
        self._up_data = up
        self._down_data = down
        self._up_steps = [
            (vertex, [
                (_key_getter(mine), child, _key_getter(child_positions))
                for mine, child, child_positions in probes
            ])
            for vertex, probes in up
        ]
        self._down_steps = [
            (vertex, _key_getter(mine), parent, _key_getter(parent_positions))
            for vertex, mine, parent, parent_positions in down
        ]

    def steps(self) -> tuple:
        """The position-based schedule as plain data:
        ``(size, up_steps, down_steps)`` — picklable, hashable, and
        relinkable with :meth:`from_steps`."""
        return (self._size, self._up_data, self._down_data)

    @classmethod
    def from_steps(cls, steps: tuple) -> "CompiledReducer":
        """Relink a reducer from :meth:`steps` data (no schema work)."""
        size, up, down = steps
        self = cls.__new__(cls)
        self._link(size, up, down)
        return self

    def reduce(self, row_sets: Sequence[FrozenSet[tuple]]
               ) -> List[FrozenSet[tuple]]:
        """Globally consistent row sets (same order as the input bags).

        An input collection that survives a pass unchanged is returned
        by reference, so callers holding cache-bearing snapshots keep
        them for the bags the reduction did not touch.
        """
        if len(row_sets) != self._size:
            raise ValueError("row set count does not match compiled tree")
        reduced: List = list(row_sets)
        # Key sets indexed per vertex (getter -> keys), so a shrink
        # invalidates exactly the shrunk vertex's slot instead of
        # rebuilding a flat dict over every cached edge.
        key_sets: List = [None] * self._size

        def keys_of(index: int, getter) -> Set[tuple]:
            per_vertex = key_sets[index]
            if per_vertex is None:
                per_vertex = key_sets[index] = {}
            cached = per_vertex.get(getter)
            if cached is None:
                cached = per_vertex[getter] = set(map(getter, reduced[index]))
            return cached

        for vertex, probes in self._up_steps:
            rows = reduced[vertex]
            if not rows:
                continue
            if len(probes) == 1:
                mine_of, child, child_of = probes[0]
                keys = keys_of(child, child_of)
                kept = {row for row in rows if mine_of(row) in keys}
            else:
                resolved = [
                    (mine_of, keys_of(child, child_of))
                    for mine_of, child, child_of in probes
                ]
                kept = {
                    row for row in rows
                    if all(mine_of(row) in keys for mine_of, keys in resolved)
                }
            if len(kept) != len(rows):
                reduced[vertex] = kept
                key_sets[vertex] = None
        for vertex, mine_of, parent, parent_of in self._down_steps:
            rows = reduced[vertex]
            if not rows:
                continue
            keys = keys_of(parent, parent_of)
            kept = {row for row in rows if mine_of(row) in keys}
            if len(kept) != len(rows):
                reduced[vertex] = kept
                key_sets[vertex] = None
        if any(not rows for rows in reduced):
            return [frozenset() for _ in reduced]
        return [rows if isinstance(rows, frozenset) else frozenset(rows)
                for rows in reduced]


class CompiledDeltaReducer(DeltaReducer):
    """Compiled rendition of :class:`~repro.consistency.delta.DeltaReducer`.

    Identical support-counter / changed-key-frontier algorithm; the only
    lowering is the key-extractor family: shared-variable keys are
    extracted through the same scalar-fused :func:`_key_getter` memo the
    :class:`CompiledReducer` semijoin passes use (bare C-speed
    ``itemgetter`` value for a single shared position, tuple extractor
    otherwise), resolved once at link time.  Keys never leave the
    reducer, so scalar keys are safe — both endpoints of an edge always
    extract through the same family.

    Like the compiled delta-join plans, the extractors are closures:
    :meth:`~repro.consistency.delta.DeltaReducer.steps` data is plain
    pickle-safe positions, and a pickle round trip (or
    :meth:`from_steps`) relinks them.  The
    :class:`~repro.dynamic.reduced.ReducedMaintainer` links this class
    on the compiled tier and the interpreted ``DeltaReducer`` under
    ``REPRO_COMPILED=0``.
    """

    _getter = staticmethod(_key_getter)


def nonempty_after_pairwise_consistency(query: ConjunctiveQuery,
                                        database: Database,
                                        width: int) -> bool:
    """Local-consistency answer-existence test.

    Returns ``True`` iff all views of ``V^k_Q`` remain non-empty after the
    pairwise-consistency fixpoint over the standard view extension of
    *database*.  Sound and complete under the promise that the cores of
    *query* have generalized hypertree width at most *width* ([GS17b]); in
    general it may only return false positives (never false negatives).

    Relations of *query* symbols missing from *database* make the answer
    trivially ``False``.
    """
    for atom in query.atoms:
        relation = database.get(atom.relation)
        if relation is None or len(relation) == 0:
            return False
    views = hypertree_view_set(query, width)
    view_db = standard_view_extension(views, database)
    if any(len(instance) == 0 for instance in view_db.values()):
        return False
    reduced = pairwise_consistency(view_db)
    return all(len(instance) > 0 for instance in reduced.values())
