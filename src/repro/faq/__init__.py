"""Functional aggregate queries (FAQ) and the Inside-Out algorithm.

The paper's related-work section (Section 1.3) and conclusion (Section 7)
single out the *Inside-Out* algorithm of Khamis, Ngo and Rudra [KNR16] as
the main algorithmic comparator: it evaluates functional aggregate queries
by variable elimination and can count answers of a conjunctive query when
run with per-variable aggregates — Boolean ("does a witness exist?") for the
existential variables and sum for the free ones.  Its runtime is governed
by the *FAQ-width* of the chosen variable order and, in contrast to the
#-hypertree approach of the paper, is superpolynomial in the query size.

This subpackage implements that comparator from scratch:

* :mod:`repro.faq.factor` — valued relations (semiring-annotated
  substitution sets), the multiply/marginalize kernel of variable
  elimination;
* :mod:`repro.faq.ordering` — elimination orders: validity for #CQ
  semantics, greedy heuristics (min-degree, min-fill), exhaustive optimal
  search, and the induced width of an order;
* :mod:`repro.faq.insideout` — the Inside-Out evaluation loop, the #CQ
  entry point :func:`count_insideout`, and a general semiring entry point.
"""

from .factor import Factor
from .insideout import (
    InsideOutReport,
    count_insideout,
    evaluate_faq,
    insideout_report,
)
from .order_search import (
    optimal_elimination_order,
    optimal_induced_width,
)
from .ordering import (
    best_elimination_order,
    elimination_order_is_valid,
    fractional_induced_width,
    induced_width,
    min_degree_order,
    min_fill_order,
)

__all__ = [
    "Factor",
    "InsideOutReport",
    "count_insideout",
    "evaluate_faq",
    "insideout_report",
    "best_elimination_order",
    "elimination_order_is_valid",
    "fractional_induced_width",
    "induced_width",
    "min_degree_order",
    "min_fill_order",
    "optimal_elimination_order",
    "optimal_induced_width",
]
