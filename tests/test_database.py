"""Unit tests for repro.db.database."""

import pytest

from repro.db.database import Database
from repro.db.relation import Relation
from repro.exceptions import DatabaseError


class TestDatabase:
    def test_from_dict(self):
        db = Database.from_dict({"r": [(1, 2)], "s": [(3,)]})
        assert db["r"].arity == 2
        assert db["s"].arity == 1

    def test_from_dict_rejects_empty_relation(self):
        with pytest.raises(DatabaseError):
            Database.from_dict({"r": []})

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(DatabaseError):
            Database([Relation("r", 1, [(1,)]), Relation("r", 1, [(2,)])])

    def test_missing_relation_raises(self):
        db = Database.from_dict({"r": [(1,)]})
        with pytest.raises(DatabaseError):
            db["nope"]
        assert db.get("nope") is None

    def test_contains_iter_len(self):
        db = Database.from_dict({"r": [(1,)], "s": [(2,)]})
        assert "r" in db
        assert sorted(db) == ["r", "s"]
        assert len(db) == 2
        assert db.symbols() == frozenset({"r", "s"})

    def test_with_relation_replaces(self):
        db = Database.from_dict({"r": [(1,)]})
        db2 = db.with_relation(Relation("r", 1, [(2,)]))
        assert (2,) in db2["r"]
        assert (1,) in db["r"]  # original untouched

    def test_without(self):
        db = Database.from_dict({"r": [(1,)], "s": [(2,)]})
        assert db.without("s").symbols() == frozenset({"r"})

    def test_merged_with(self):
        db1 = Database.from_dict({"r": [(1,)]})
        db2 = Database.from_dict({"r": [(2,)], "s": [(3,)]})
        merged = db1.merged_with(db2)
        assert (2,) in merged["r"]  # other wins
        assert "s" in merged

    def test_active_domain(self):
        db = Database.from_dict({"r": [(1, 2)], "s": [(3,)]})
        assert db.active_domain() == frozenset({1, 2, 3})

    def test_size_measures(self):
        db = Database.from_dict({"r": [(1,), (2,)], "s": [(3,)]})
        assert db.max_relation_size() == 2
        assert db.total_tuples() == 3
        assert Database().max_relation_size() == 0

    def test_equality(self):
        assert Database.from_dict({"r": [(1,)]}) == Database.from_dict({"r": [(1,)]})
        assert Database.from_dict({"r": [(1,)]}) != Database.from_dict({"r": [(2,)]})
