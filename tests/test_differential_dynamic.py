"""Differential update-replay harness (ISSUE 3).

Random update streams — inserts, deletes, adversarial orders, deletes of
absent rows — are replayed through three independent counting paths:

1. :class:`~repro.service.CountingSession` (the streaming front end,
   maintained counts plus engine fallbacks),
2. a bare :class:`~repro.dynamic.IncrementalCounter` (the join-tree DP),
3. from-scratch ``count_answers`` over the chain of immutable databases,

and all three must agree **at every step** — in inline, thread, and
process execution modes, with maintenance both enabled and disabled.
"""

from __future__ import annotations

import random

import pytest

from repro.counting.engine import count_answers
from repro.db import Database
from repro.dynamic import (
    Delete,
    IncrementalCounter,
    Insert,
    apply_update,
)
from repro.exceptions import DatabaseError
from repro.query import parse_query
from repro.query.canonical import random_renaming
from repro.service import CountingSession, CountRequest, UpdateRequest

QUERY = parse_query("ans(A, B, C) :- r(A, B), s(B, C)")
#: A shape the maintainer cannot serve (alpha-cyclic triangle), pinning
#: the engine-fallback path in every replay.
CYCLIC = parse_query("ans(A, B, C) :- r(A, B), s(B, C), r(C, A)")


def random_database(rng: random.Random, size: int = 8,
                    domain: int = 4) -> Database:
    return Database.from_dict({
        "r": list({(rng.randrange(domain), rng.randrange(domain))
                   for _ in range(size)}),
        "s": list({(rng.randrange(domain), rng.randrange(domain))
                   for _ in range(size)}),
    })


def random_update(rng: random.Random, database: Database, domain: int = 4):
    """A valid random update against *database*'s current contents."""
    relation = rng.choice(["r", "s"])
    existing = sorted(database[relation].rows, key=repr)
    if existing and rng.random() < 0.45:
        return Delete(relation, rng.choice(existing))
    while True:
        row = (rng.randrange(domain), rng.randrange(domain))
        if row not in database[relation]:
            return Insert(relation, row)


def replay_stream(seed: int, steps: int = 25, **session_kwargs):
    """Replay one random stream through all three paths, step by step."""
    rng = random.Random(seed)
    database = random_database(rng)
    with CountingSession(databases={"main": database},
                         **session_kwargs) as session:
        counter = IncrementalCounter(QUERY, database)
        for step in range(steps):
            update = random_update(rng, database)
            database = apply_update(database, update)
            counter.apply(update)
            session.update("main", update)
            # A renamed query keeps the multi-query sharing path honest.
            query = random_renaming(QUERY, seed=rng.randrange(2 ** 30))
            session_count = session.count(
                CountRequest(query, "main", label=f"step{step}")
            ).count
            scratch = count_answers(QUERY, database).count
            assert counter.count == scratch, (
                f"seed {seed} step {step}: maintainer {counter.count} "
                f"!= recount {scratch}"
            )
            assert session_count == scratch, (
                f"seed {seed} step {step}: session {session_count} "
                f"!= recount {scratch}"
            )


class TestDifferentialReplayInline:
    @pytest.mark.parametrize("seed", range(6))
    def test_session_maintainer_and_recount_agree(self, seed):
        replay_stream(seed)

    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_with_maintenance_disabled(self, seed):
        replay_stream(seed, maintain=False)

    def test_insert_then_delete_everything(self):
        """Adversarial order: drain a relation to empty and refill it."""
        database = Database.from_dict({"r": [(1, 2)], "s": [(2, 3)]})
        with CountingSession(databases={"main": database}) as session:
            counter = IncrementalCounter(QUERY, database)
            stream = [
                Delete("r", (1, 2)), Insert("r", (1, 2)),
                Delete("s", (2, 3)), Delete("r", (1, 2)),
                Insert("r", (4, 5)), Insert("s", (5, 6)),
            ]
            for update in stream:
                database = apply_update(database, update)
                counter.apply(update)
                session.update("main", update)
                scratch = count_answers(QUERY, database).count
                assert counter.count == scratch
                assert session.count(
                    CountRequest(QUERY, "main")).count == scratch

    def test_delete_of_absent_row_is_rejected_atomically(self):
        """An invalid update raises and perturbs *nothing* downstream."""
        database = Database.from_dict({"r": [(1, 10)], "s": [(10, 5)]})
        with CountingSession(databases={"main": database}) as session:
            before = session.count(CountRequest(QUERY, "main")).count
            with pytest.raises(DatabaseError):
                session.update("main", Delete("r", (9, 9)))
            with pytest.raises(DatabaseError):
                session.update("main", Insert("r", (1, 10)))  # duplicate
            assert session.database("main") is database
            assert session.count(CountRequest(QUERY, "main")).count == before
            assert before == count_answers(QUERY, database).count


class TestDifferentialReplayPooled:
    """The same agreement through the worker-pool stream path."""

    def _stream_jobs(self, seed: int, steps: int = 12):
        rng = random.Random(seed)
        database = random_database(rng)
        jobs = []
        databases = {"main": database}
        expected = []
        current = database
        for _ in range(steps):
            update = random_update(rng, current)
            current = apply_update(current, update)
            jobs.append(UpdateRequest("main", update))
            query = random_renaming(QUERY, seed=rng.randrange(2 ** 30))
            jobs.append(CountRequest(query, "main"))
            jobs.append(CountRequest(CYCLIC, "main"))
            expected.append(count_answers(QUERY, current).count)
            expected.append(count_answers(CYCLIC, current).count)
        return databases, jobs, expected

    @pytest.mark.parametrize("mode,workers", [
        ("inline", 0), ("thread", 2), ("process", 2),
    ])
    def test_stream_matches_sequential_recounts(self, mode, workers):
        databases, jobs, expected = self._stream_jobs(seed=7)
        with CountingSession(databases=databases, mode=mode,
                             workers=workers) as session:
            results = session.run_stream(jobs)
        counts = [result.count for result in results
                  if hasattr(result, "count")]
        assert counts == expected

    def test_modes_agree_job_for_job(self):
        databases_a, jobs, _ = self._stream_jobs(seed=11)
        outcomes = {}
        for mode, workers in (("inline", 0), ("thread", 2), ("process", 2)):
            databases, stream, _ = self._stream_jobs(seed=11)
            with CountingSession(databases=databases, mode=mode,
                                 workers=workers) as session:
                results = session.run_stream(stream)
            outcomes[mode] = [result.count for result in results
                              if hasattr(result, "count")]
        assert outcomes["inline"] == outcomes["thread"] == outcomes["process"]
